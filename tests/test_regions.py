"""Tests for regions (aggregate nodes) and node hierarchies."""

from __future__ import annotations

import pytest

from repro.core import GraphAnalyticsEngine, GraphQuery, GraphRecord
from repro.core.hierarchy import NodeHierarchy, rollup_record, rollup_records
from repro.core.regions import Region, paths_through_region, queries_through_region

# The Figure 1 SCM network (as drawn; see examples/scm_delivery.py).
FIGURE1 = [
    ("A", "D"), ("A", "B"), ("B", "F"), ("C", "B"), ("C", "H"),
    ("D", "E"), ("E", "G"), ("F", "E"), ("F", "J"), ("G", "I"),
    ("G", "K"), ("H", "K"), ("J", "K"),
]
REGION2_NODES = {"D", "E", "F", "G"}


class TestRegion:
    def test_construction_from_host(self):
        region = Region("R2", REGION2_NODES, host_edges=FIGURE1)
        assert region.elements == {("D", "E"), ("E", "G"), ("F", "E")}

    def test_explicit_elements_validated(self):
        with pytest.raises(ValueError):
            Region("R", {"A"}, elements=[("A", "B")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Region("R", [])

    def test_sources_terminals(self):
        region = Region("R2", REGION2_NODES, host_edges=FIGURE1)
        assert region.sources() == {"D", "F"}
        assert region.terminals() == {"G"}

    def test_isolated_nodes_are_both(self):
        region = Region("R", {"X", "Y"}, elements=[("X", "Y")])
        bigger = Region("R", {"X", "Y", "Z"}, elements=[("X", "Y")])
        assert "Z" in bigger.sources() and "Z" in bigger.terminals()
        assert region.sources() == {"X"}

    def test_entry_exit_edges(self):
        region = Region("R2", REGION2_NODES, host_edges=FIGURE1)
        assert region.entry_edges(FIGURE1) == {("A", "D"), ("B", "F")}
        assert region.exit_edges(FIGURE1) == {("F", "J"), ("G", "I"), ("G", "K")}

    def test_internal_view_elements(self):
        region = Region("R2", REGION2_NODES, host_edges=FIGURE1)
        assert len(region.internal_view_elements()) == 3
        with pytest.raises(ValueError):
            Region("R", {"Q"}).internal_view_elements()


class TestPathsThroughRegion:
    def test_paper_example_excludes_chk(self):
        """Section 3.3: the region-2 expression must not produce [C,H,K]."""
        region = Region("R2", REGION2_NODES, host_edges=FIGURE1)
        paths = paths_through_region(FIGURE1, region)
        node_seqs = {p.nodes for p in paths}
        assert ("C", "H", "K") not in node_seqs
        assert all(any(n in REGION2_NODES for n in seq) for seq in node_seqs)

    def test_all_paths_traverse_region_fully(self):
        region = Region("R2", REGION2_NODES, host_edges=FIGURE1)
        paths = paths_through_region(FIGURE1, region)
        assert paths
        for path in paths:
            # Every produced path enters at a region source and leaves
            # from a region terminal.
            inside = [n for n in path.nodes if n in REGION2_NODES]
            assert inside[0] in region.sources()
            assert inside[-1] in region.terminals()

    def test_expected_route_present(self):
        region = Region("R2", REGION2_NODES, host_edges=FIGURE1)
        node_seqs = {p.nodes for p in paths_through_region(FIGURE1, region)}
        assert ("A", "D", "E", "G", "I") in node_seqs

    def test_queries_through_region_match_records(self):
        engine = GraphAnalyticsEngine()
        engine.load_records(
            [
                GraphRecord("via-r2", {("A", "D"): 1.0, ("D", "E"): 2.0,
                                       ("E", "G"): 3.0, ("G", "I"): 4.0}),
                GraphRecord("avoid-r2", {("C", "H"): 1.0, ("H", "K"): 2.0}),
            ]
        )
        region = Region("R2", REGION2_NODES, host_edges=FIGURE1)
        queries = queries_through_region(FIGURE1, region)
        matched = set()
        for q in queries:
            matched.update(engine.query(q, fetch_measures=False).record_ids)
        assert matched == {"via-r2"}


HIERARCHY = NodeHierarchy(
    levels=["hub", "province", "country"],
    parents=[
        {"D": "P2", "E": "P2", "F": "P2", "G": "P2", "A": "P1", "B": "P1"},
        {"P1": "GR", "P2": "GR"},
    ],
)


class TestHierarchy:
    def test_levels_validated(self):
        with pytest.raises(ValueError):
            NodeHierarchy(["only"], [])
        with pytest.raises(ValueError):
            NodeHierarchy(["a", "b"], [])

    def test_ancestor_lookup(self):
        assert HIERARCHY.ancestor("D", "hub") == "D"
        assert HIERARCHY.ancestor("D", "province") == "P2"
        assert HIERARCHY.ancestor("D", "country") == "GR"

    def test_unmapped_node_is_own_ancestor(self):
        assert HIERARCHY.ancestor("Z", "province") == "Z"

    def test_unknown_level(self):
        with pytest.raises(KeyError):
            HIERARCHY.ancestor("D", "galaxy")

    def test_members(self):
        members = HIERARCHY.members("P2", "province", ["A", "D", "E", "Z"])
        assert members == {"D", "E"}


class TestRollup:
    RECORD = GraphRecord(
        "r",
        {
            ("A", "D"): 1.0,   # P1 -> P2
            ("D", "E"): 2.0,   # internal to P2
            ("E", "G"): 3.0,   # internal to P2
            ("G", "I"): 4.0,   # P2 -> I
        },
    )

    def test_rollup_merges_internal_edges_into_node(self):
        rolled = rollup_record(self.RECORD, HIERARCHY, "province")
        assert rolled.measure(("P2", "P2")) == 5.0  # 2 + 3 coalesced
        assert rolled.measure(("P1", "P2")) == 1.0
        assert rolled.measure(("P2", "I")) == 4.0

    def test_rollup_with_max(self):
        rolled = rollup_record(self.RECORD, HIERARCHY, "province", function="max")
        assert rolled.measure(("P2", "P2")) == 3.0

    def test_rollup_metadata_records_level(self):
        rolled = rollup_record(self.RECORD, HIERARCHY, "province")
        assert rolled.metadata["rollup_level"] == "province"

    def test_rollup_to_top_level(self):
        rolled = rollup_record(self.RECORD, HIERARCHY, "country")
        # A, D, E, G all in GR; I unmapped: edges GR->GR internal + GR->I.
        assert rolled.measure(("GR", "GR")) == 6.0
        assert rolled.measure(("GR", "I")) == 4.0

    def test_rollup_records_generator(self):
        rolled = list(rollup_records([self.RECORD] * 3, HIERARCHY, "province"))
        assert len(rolled) == 3

    def test_rolled_records_queryable(self):
        engine = GraphAnalyticsEngine()
        engine.load_records(rollup_records([self.RECORD], HIERARCHY, "province"))
        result = engine.query(GraphQuery([("P1", "P2"), ("P2", "P2")]))
        assert result.record_ids == ["r"]

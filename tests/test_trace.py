"""Tracer semantics: observational purity and well-formed span trees.

Two property suites back the tentpole's core guarantees:

* enabling tracing never changes a query answer (the spans wrap the exact
  same code paths), and
* every produced trace is a well-formed tree — children nest strictly
  inside their parent's interval and their durations sum to at most the
  parent's.
"""

from __future__ import annotations

import itertools
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GraphAnalyticsEngine,
    GraphQuery,
    GraphRecord,
    PathAggregationQuery,
)
from repro.exec import QueryExecutor
from repro.obs import Span, Tracer

from .test_differential import small_collections


def _assert_well_formed(span: Span) -> None:
    assert span.end_ns is not None, f"span {span.name} left open"
    assert span.end_ns >= span.start_ns
    for child in span.children:
        assert child.start_ns >= span.start_ns, (span.name, child.name)
        assert child.end_ns <= span.end_ns, (span.name, child.name)
        _assert_well_formed(child)
    assert sum(c.duration_ns for c in span.children) <= span.duration_ns


class TestTracedEqualsUntraced:
    @given(small_collections())
    @settings(max_examples=30, deadline=None)
    def test_graph_queries_identical(self, case):
        records, queries = case
        plain = GraphAnalyticsEngine()
        plain.load_records(records)
        traced = GraphAnalyticsEngine()
        traced.load_records(records)
        traced.use_tracer(Tracer())
        for query in queries:
            a = plain.query(query)
            b = traced.query(query)
            assert a.record_ids == b.record_ids
            for element, values in a.measures.items():
                got = b.measures[element]
                for x, y in zip(values, got):
                    assert x == y or (x != x and y != y)  # NaN-safe

    @given(small_collections())
    @settings(max_examples=20, deadline=None)
    def test_aggregations_identical(self, case):
        records, queries = case
        plain = GraphAnalyticsEngine()
        plain.load_records(records)
        traced = GraphAnalyticsEngine()
        traced.load_records(records)
        traced.use_tracer(Tracer())
        for query, function in zip(queries, itertools.cycle(["sum", "avg"])):
            agg = PathAggregationQuery(query, function)
            a = plain.aggregate(agg)
            b = traced.aggregate(agg)
            assert a.record_ids == b.record_ids
            assert set(a.path_values) == set(b.path_values)
            for path, values in a.path_values.items():
                for x, y in zip(values, b.path_values[path]):
                    assert x == y or (x != x and y != y)

    @given(small_collections())
    @settings(max_examples=15, deadline=None)
    def test_traced_cached_executor_identical(self, case):
        records, queries = case
        plain = GraphAnalyticsEngine()
        plain.load_records(records)
        traced = GraphAnalyticsEngine()
        traced.load_records(records)
        traced.use_tracer(Tracer())
        with QueryExecutor(traced, jobs=2, cache_mb=4) as executor:
            results = executor.run_batch(queries, fetch_measures=False)
        for query, result in zip(queries, results):
            assert (
                result.record_ids
                == plain.query(query, fetch_measures=False).record_ids
            )


class TestSpanTreeWellFormed:
    @given(small_collections())
    @settings(max_examples=25, deadline=None)
    def test_all_traces_well_formed(self, case):
        records, queries = case
        engine = GraphAnalyticsEngine()
        engine.load_records(records)
        tracer = Tracer()
        engine.use_tracer(tracer)
        for query in queries:
            engine.query(query)
            engine.aggregate(PathAggregationQuery(query, "sum"))
        traces = tracer.drain()
        assert len(traces) == 2 * len(queries)
        for trace in traces:
            _assert_well_formed(trace.root)

    @given(small_collections())
    @settings(max_examples=15, deadline=None)
    def test_concurrent_traces_well_formed(self, case):
        records, queries = case
        engine = GraphAnalyticsEngine()
        engine.load_records(records)
        tracer = Tracer()
        engine.use_tracer(tracer)
        with QueryExecutor(engine, jobs=4, cache_mb=4) as executor:
            executor.run_batch(queries, fetch_measures=False)
        traces = tracer.drain()
        assert len(traces) == len(queries)
        for trace in traces:
            _assert_well_formed(trace.root)
            assert trace.root.name == "query"

    def test_expected_stage_spans_present(self, figure2_engine):
        tracer = Tracer()
        figure2_engine.use_tracer(tracer)
        query = GraphQuery([("A", "B"), ("A", "C")])
        result = figure2_engine.query(query)
        root = tracer.last.root
        assert root.find("rewrite") is not None
        assert root.find("conjunction") is not None
        assert root.find("measures") is not None
        assert root.counters["rows_matched"] == len(result)
        agg = PathAggregationQuery(GraphQuery([("A", "C"), ("C", "E")]), "sum")
        figure2_engine.aggregate(agg)
        root = tracer.last.root
        assert root.name == "aggregate"
        assert root.find("aggregation") is not None


class TestTracerMechanics:
    def test_counters_and_meta_roundtrip(self):
        clock = itertools.count(step=10)
        tracer = Tracer(clock=lambda: next(clock))
        with tracer.span("query", query="q1", epoch=7):
            tracer.add("rows_matched", 3)
            with tracer.span("child", kind="element"):
                tracer.add("bitmaps_fetched")
        trace = tracer.last
        assert trace.query == "q1"
        assert trace.epoch == 7
        root = trace.root
        assert root.counters == {"rows_matched": 3}
        (child,) = root.children
        assert child.meta == {"kind": "element"}
        assert child.counters == {"bitmaps_fetched": 1}
        assert root.duration_ns == 30  # 4 clock reads, 10 apart
        payload = trace.to_dict()
        assert payload["root"]["children"][0]["name"] == "child"
        assert "cache" not in trace.render()

    def test_exception_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("query", query="boom"):
                raise RuntimeError("boom")
        assert len(tracer) == 1
        assert tracer.last.root.end_ns is not None
        assert tracer.current is None

    def test_drain_and_clear(self):
        tracer = Tracer()
        with tracer.span("query"):
            pass
        assert len(tracer) == 1
        assert len(tracer.drain()) == 1
        assert len(tracer) == 0
        with tracer.span("query"):
            pass
        tracer.clear()
        assert tracer.last is None

    def test_max_traces_bounds_buffer(self):
        tracer = Tracer(max_traces=3)
        for i in range(10):
            with tracer.span("query", query=f"q{i}"):
                pass
        assert len(tracer) == 3
        assert [t.query for t in tracer.drain()] == ["q7", "q8", "q9"]

    def test_thread_local_stacks_do_not_interleave(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(tag: str) -> None:
            with tracer.span("query", query=tag):
                barrier.wait()
                with tracer.span("child", tag=tag):
                    barrier.wait()

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        traces = tracer.drain()
        assert len(traces) == 2
        for trace in traces:
            (child,) = trace.root.children
            assert child.meta["tag"] == trace.query

    def test_add_outside_span_is_noop(self):
        tracer = Tracer()
        tracer.add("orphan")  # must not raise
        assert tracer.current is None

    def test_invalid_max_traces(self):
        with pytest.raises(ValueError):
            Tracer(max_traces=0)

    def test_untraced_engine_has_no_tracer(self):
        engine = GraphAnalyticsEngine()
        engine.load_records([GraphRecord("r", {("a", "b"): 1.0})])
        assert engine.tracer is None
        engine.query(GraphQuery([("a", "b")]))  # no tracer: plain path
        tracer = Tracer()
        engine.use_tracer(tracer)
        engine.query(GraphQuery([("a", "b")]))
        assert len(tracer) == 1
        engine.use_tracer(None)
        engine.query(GraphQuery([("a", "b")]))
        assert len(tracer) == 1

"""Unit tests for continuous workload-adaptive view maintenance:
the workload window, the maintainer's refresh/decay logic, the facade's
incremental materialize / per-view drop, executor observation + atomic
swap, the ``/views`` endpoint, and the ``repro views`` CLI."""

from __future__ import annotations

import threading
import time

import pytest

from repro import (
    GraphAnalyticsEngine,
    GraphQuery,
    GraphRecord,
    PathAggregationQuery,
    QueryExecutor,
    ViewMaintainer,
    WorkloadWindow,
)
from repro.adaptive import MaintenanceReport, WindowEntry
from repro.obs import MetricsRegistry


def small_records(n=24):
    out = []
    for i in range(n):
        if i % 2:
            edges = {("A", "B"): float(i), ("B", "C"): 1.0}
        else:
            edges = {("A", "B"): float(i), ("C", "D"): 2.0}
        out.append(GraphRecord(f"r{i}", edges))
    return out


AB_BC = GraphQuery([("A", "B"), ("B", "C")])
AB_CD = GraphQuery([("A", "B"), ("C", "D")])


class TestWorkloadWindow:
    def test_record_and_snapshot(self):
        window = WorkloadWindow(size=4)
        window.record(AB_BC, ("gv1",))
        window.record(AB_CD)
        snap = window.snapshot()
        assert snap == [WindowEntry(AB_BC, ("gv1",)), WindowEntry(AB_CD, ())]
        assert len(window) == 2 and window.observed == 2

    def test_bounded_but_counts_all(self):
        window = WorkloadWindow(size=3)
        for _ in range(10):
            window.record(AB_BC)
        assert len(window) == 3
        assert window.observed == 10

    def test_clear(self):
        window = WorkloadWindow(size=3)
        window.record(AB_BC)
        window.clear()
        assert len(window) == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            WorkloadWindow(size=0)

    def test_concurrent_records(self):
        window = WorkloadWindow(size=1000)

        def spam():
            for _ in range(200):
                window.record(AB_BC, ("v",))

        threads = [threading.Thread(target=spam) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert window.observed == 800
        assert len(window) == 800


class TestFacadeIncremental:
    def test_full_build_matches_add_graph_view(self):
        engine = GraphAnalyticsEngine(shards=2)
        engine.load_records(small_records())
        a = engine.add_graph_view(AB_BC.elements, name="manual")
        b = engine.materialize_incremental(AB_BC.elements, name="incr")
        bm_a = engine.relation.view_bitmap(a)
        bm_b = engine.relation.view_bitmap(b)
        assert bm_a.to_indices().tolist() == bm_b.to_indices().tolist()

    def test_drop_decayed_is_per_view(self):
        engine = GraphAnalyticsEngine()
        engine.load_records(small_records())
        keep = engine.add_graph_view(AB_BC.elements, name="keep")
        goner = engine.add_graph_view(AB_CD.elements, name="goner")
        before = engine.epoch
        dropped = engine.drop_decayed(["goner", "missing"])
        assert dropped == [goner]
        assert keep in engine.graph_views
        assert goner not in engine.graph_views
        assert not engine.relation.has_graph_view("goner")
        assert engine.epoch == before + 1

    def test_drop_decayed_unknown_names_no_epoch_bump(self):
        engine = GraphAnalyticsEngine()
        engine.load_records(small_records())
        before = engine.epoch
        assert engine.drop_decayed(["nope"]) == []
        assert engine.epoch == before

    def test_drop_decayed_aggregate_view(self):
        engine = GraphAnalyticsEngine()
        engine.load_records(small_records())
        agg = PathAggregationQuery(
            GraphQuery([("A", "B"), ("B", "C")]), "avg"
        )
        report = engine.materialize_aggregate_views([agg] * 3, budget=1, function="avg")
        assert report.selected
        name = report.selected[0]
        stored = engine.aggregate_views[name].column_names()
        dropped = engine.drop_decayed([name])
        assert dropped == [name]
        assert name not in engine.aggregate_views
        for column in stored:
            assert column not in engine.relation.aggregate_view_names()

    def test_dropped_view_leaves_plans(self):
        engine = GraphAnalyticsEngine()
        engine.load_records(small_records())
        name = engine.add_graph_view(AB_BC.elements)
        used = engine.query(AB_BC, fetch_measures=False)
        assert name in used.plan.view_names
        engine.drop_decayed([name])
        after = engine.query(AB_BC, fetch_measures=False)
        assert name not in after.plan.view_names
        assert after.record_ids == used.record_ids


class TestExecutorWiring:
    def test_window_observes_plan_views(self):
        engine = GraphAnalyticsEngine()
        engine.load_records(small_records())
        with QueryExecutor(engine) as executor:
            window = WorkloadWindow()
            executor.attach_window(window)
            executor.run_one(AB_BC, fetch_measures=False)
            name = executor.materialize_incremental(AB_BC.elements)
            executor.run_one(AB_BC, fetch_measures=False)
            first, second = window.snapshot()
            assert first == WindowEntry(AB_BC, ())
            assert second == WindowEntry(AB_BC, (name,))

    def test_swap_bumps_epoch_and_invalidates_cache(self):
        engine = GraphAnalyticsEngine()
        engine.load_records(small_records())
        with QueryExecutor(engine, cache_mb=4) as executor:
            r1 = executor.run_one(AB_BC, fetch_measures=False)
            r2 = executor.run_one(AB_BC, fetch_measures=False)
            assert executor.cache.stats.hits >= 1
            name = executor.materialize_incremental(AB_BC.elements)
            assert engine.epoch > r2.epoch
            # No stale entries survive the swap.
            assert all(k[0] == engine.epoch for k in executor.cache._entries)
            r3 = executor.run_one(AB_BC, fetch_measures=False)
            assert r3.epoch == engine.epoch
            assert r3.record_ids == r1.record_ids
            executor.drop_decayed([name])
            assert all(k[0] == engine.epoch for k in executor.cache._entries)

    def test_commit_view_swap_is_one_atomic_batch(self):
        engine = GraphAnalyticsEngine()
        engine.load_records(small_records())
        with QueryExecutor(engine) as executor:
            old = executor.materialize_incremental(AB_CD.elements)
            elements, staged, rows = executor.stage_view(AB_BC.elements)
            before = engine.epoch
            swap = executor.commit_view_swap(
                adds=[(None, elements, staged, rows)], drops=[old]
            )
            assert swap["dropped"] == [old]
            assert len(swap["added"]) == 1
            # adds + drops + one shared views-epoch bump per side of the
            # batch, all within a single exclusive section.
            assert swap["epoch"] == engine.epoch
            assert engine.epoch - before == 2
            assert swap["n_records"] == engine.n_records

    def test_stage_then_append_then_commit(self):
        engine = GraphAnalyticsEngine(shards=2)
        engine.load_records(small_records())
        with QueryExecutor(engine) as executor:
            elements, staged, rows = executor.stage_view(AB_BC.elements)
            executor.append_records(
                [GraphRecord("x0", {("A", "B"): 1.0, ("B", "C"): 1.0})]
            )
            swap = executor.commit_view_swap(adds=[(None, elements, staged, rows)])
            name = swap["added"][0]
            got = engine.relation.view_bitmap(name)
            want = engine.compute_view_bitmap(AB_BC.elements)
            assert got.to_indices().tolist() == want.to_indices().tolist()


def run_workload(executor, queries, repeat=1):
    for _ in range(repeat):
        for query in queries:
            executor.run_one(query, fetch_measures=False)


class TestViewMaintainer:
    def make(self, **kwargs):
        engine = GraphAnalyticsEngine(shards=kwargs.pop("shards", 1))
        engine.load_records(small_records())
        executor = QueryExecutor(engine, cache_mb=2)
        defaults = dict(
            budget=4, min_window=4, min_support=2, interval_s=0.05,
            grace_refreshes=0,
        )
        defaults.update(kwargs)
        return engine, executor, ViewMaintainer(executor, **defaults)

    def test_skips_below_min_window(self):
        engine, executor, maintainer = self.make(min_window=10)
        with executor:
            run_workload(executor, [AB_BC], repeat=3)
            report = maintainer.refresh()
            assert not report.refreshed
            assert "below minimum" in report.reason
            assert not engine.graph_views

    def test_materializes_hot_views(self):
        engine, executor, maintainer = self.make()
        with executor:
            run_workload(executor, [AB_BC, AB_CD], repeat=4)
            report = maintainer.refresh()
            assert report.refreshed and report.swapped
            managed = maintainer.managed_views()
            assert set(managed.values()) == {AB_BC.elements, AB_CD.elements}
            result = executor.run_one(AB_BC, fetch_measures=False)
            assert result.plan.view_names

    def test_second_refresh_keeps_hot_views(self):
        engine, executor, maintainer = self.make()
        with executor:
            run_workload(executor, [AB_BC, AB_CD], repeat=4)
            maintainer.refresh()
            run_workload(executor, [AB_BC, AB_CD], repeat=4)
            report = maintainer.refresh()
            assert not report.added and not report.dropped
            assert set(report.kept) == set(maintainer.managed_views())

    def test_drops_decayed_views_after_drift(self):
        engine, executor, maintainer = self.make(window=WorkloadWindow(16))
        with executor:
            run_workload(executor, [AB_CD], repeat=8)
            first = maintainer.refresh()
            assert len(first.added) == 1
            old = first.added[0]
            # Hot set shifts entirely; the window fills with the new
            # queries, the old view's hit rate decays to zero.
            run_workload(executor, [AB_BC], repeat=16)
            report = maintainer.refresh()
            assert old in report.dropped
            assert old not in engine.graph_views
            assert AB_BC.elements in set(maintainer.managed_views().values())
            assert report.hit_rates[old] == 0.0

    def test_high_hit_rate_view_survives_leaving_desired_set(self):
        engine, executor, maintainer = self.make(window=WorkloadWindow(16))
        with executor:
            run_workload(executor, [AB_CD], repeat=8)
            first = maintainer.refresh()
            old = first.added[0]
            # Still mostly AB_CD traffic (hit rate high) but sprinkle the
            # new query in: nothing should be dropped.
            run_workload(executor, [AB_CD, AB_CD, AB_CD, AB_BC], repeat=4)
            report = maintainer.refresh()
            assert old not in report.dropped
            assert report.hit_rates[old] > maintainer.hit_rate_floor

    def test_never_drops_unmanaged_views(self):
        engine, executor, maintainer = self.make(window=WorkloadWindow(16))
        with executor:
            manual = executor.materialize_incremental(AB_CD.elements, name="manual")
            run_workload(executor, [AB_BC], repeat=8)
            for _ in range(3):
                maintainer.refresh()
            assert manual in engine.graph_views

    def test_never_duplicates_existing_bitmap(self):
        engine, executor, maintainer = self.make()
        with executor:
            executor.materialize_incremental(AB_BC.elements, name="manual")
            run_workload(executor, [AB_BC], repeat=8)
            report = maintainer.refresh()
            assert not report.added
            assert [v.elements for v in engine.graph_views.values()] == [
                AB_BC.elements
            ]

    def test_budget_respected(self):
        engine, executor, maintainer = self.make(budget=1)
        with executor:
            run_workload(executor, [AB_BC, AB_CD], repeat=4)
            maintainer.refresh()
            assert len(maintainer.managed_views()) <= 1

    def test_grace_protects_fresh_views(self):
        engine, executor, maintainer = self.make(
            window=WorkloadWindow(8), grace_refreshes=5
        )
        with executor:
            run_workload(executor, [AB_CD], repeat=8)
            first = maintainer.refresh()
            old = first.added[0]
            run_workload(executor, [AB_BC], repeat=8)
            report = maintainer.refresh()
            assert old not in report.dropped  # still inside the grace period

    def test_background_loop_start_stop(self):
        engine, executor, maintainer = self.make(interval_s=0.02)
        with executor:
            run_workload(executor, [AB_BC, AB_CD], repeat=4)
            maintainer.start()
            assert maintainer.running
            maintainer.start()  # idempotent
            deadline = time.time() + 5.0
            while maintainer.refreshes == 0 and time.time() < deadline:
                time.sleep(0.01)
            maintainer.stop()
            assert not maintainer.running
            assert maintainer.refreshes >= 1
            assert maintainer.managed_views()
            maintainer.stop()  # idempotent

    def test_loop_survives_refresh_errors(self):
        engine, executor, maintainer = self.make(interval_s=0.01)
        registry = MetricsRegistry()
        maintainer.registry = registry
        boom = RuntimeError("boom")

        original = maintainer.refresh
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise boom
            return original()

        maintainer.refresh = flaky
        maintainer.start()
        deadline = time.time() + 5.0
        while len(calls) < 2 and time.time() < deadline:
            time.sleep(0.01)
        maintainer.stop()
        executor.close()
        assert len(calls) >= 2
        assert maintainer.last_error is boom
        assert registry.counter("adaptive.errors").value == 1
        assert maintainer.status()["last_error"] == repr(boom)

    def test_forgets_externally_dropped_views(self):
        engine, executor, maintainer = self.make()
        with executor:
            run_workload(executor, [AB_BC, AB_CD], repeat=4)
            maintainer.refresh()
            executor.drop_all_views()
            report = maintainer.refresh()
            assert not maintainer.managed_views() or report.added
            assert all(
                name in engine.graph_views
                for name in maintainer.managed_views()
            )

    def test_metrics_published(self):
        registry = MetricsRegistry()
        engine, executor, maintainer = self.make(registry=registry)
        with executor:
            run_workload(executor, [AB_BC, AB_CD], repeat=4)
            maintainer.refresh()
            dump = registry.to_dict()
            assert dump["adaptive.refreshes"]["value"] == 1
            assert dump["adaptive.views_added"]["value"] == 2
            assert dump["adaptive.managed_views"]["value"] == 2
            assert dump["adaptive.swap_epoch"]["value"] == engine.epoch
            assert dump["adaptive.maintenance_seconds"]["count"] == 1

    def test_status_shape(self):
        engine, executor, maintainer = self.make()
        with executor:
            run_workload(executor, [AB_BC], repeat=8)
            maintainer.refresh()
            status = maintainer.status()
            assert status["running"] is False
            assert status["refreshes"] == 1
            assert status["window"]["observed"] == 8
            (managed,) = status["managed"].values()
            assert managed["elements"] == [["A", "B"], ["B", "C"]]
            assert status["last_refresh"]["added"]
            import json

            json.dumps(status)  # must be wire-serializable

    def test_validation(self):
        engine, executor, _ = self.make()
        with executor:
            with pytest.raises(ValueError):
                ViewMaintainer(executor, budget=0)
            with pytest.raises(ValueError):
                ViewMaintainer(executor, interval_s=0)
            with pytest.raises(ValueError):
                ViewMaintainer(executor, hit_rate_floor=1.5)

    def test_report_swapped_property(self):
        report = MaintenanceReport()
        assert not report.swapped
        report.added = ["v"]
        assert report.swapped


class TestAggregateObservation:
    def test_agg_queries_feed_window_with_structural_views(self):
        engine = GraphAnalyticsEngine()
        engine.load_records(small_records())
        with QueryExecutor(engine) as executor:
            window = WorkloadWindow()
            executor.attach_window(window)
            agg = PathAggregationQuery(AB_BC, "sum")
            executor.run_one(agg)
            name = executor.materialize_incremental(AB_BC.elements)
            executor.run_one(agg)
            entries = window.snapshot()
            assert [e.query for e in entries] == [AB_BC, AB_BC]
            assert name in entries[1].views_used


class TestServeViewsEndpoint:
    def test_views_route_and_lifecycle(self):
        from repro.serve import ServeClient, start_in_thread

        engine = GraphAnalyticsEngine(shards=2)
        engine.load_records(small_records())
        registry = MetricsRegistry()
        executor = QueryExecutor(engine, jobs=2, cache_mb=2, registry=registry)
        maintainer = ViewMaintainer(
            executor, budget=4, min_window=4, interval_s=0.05,
            registry=registry,
        )
        handle = start_in_thread(executor, registry=registry, maintainer=maintainer)
        try:
            with ServeClient(*handle.address) as client:
                payload = {"elements": [["A", "B"], ["B", "C"]]}
                for _ in range(8):
                    client.query(payload)
                deadline = time.time() + 5.0
                while maintainer.views_added == 0 and time.time() < deadline:
                    time.sleep(0.02)
                assert maintainer.running
                doc = client.views()
            assert doc["epoch"] == engine.epoch
            names = [v["name"] for v in doc["graph_views"]]
            assert names and names == sorted(names)
            assert doc["adaptive"]["running"] is True
            assert doc["adaptive"]["views_added"] >= 1
            assert doc["aggregate_views"] == []
        finally:
            handle.stop()
            executor.close()
        # The maintainer's lifecycle is tied to the server's.
        assert not maintainer.running

    def test_views_without_maintainer(self):
        from repro.serve import ServeClient, start_in_thread

        engine = GraphAnalyticsEngine()
        engine.load_records(small_records())
        engine.add_graph_view(AB_BC.elements, name="manual")
        executor = QueryExecutor(engine)
        handle = start_in_thread(executor)
        try:
            with ServeClient(*handle.address) as client:
                doc = client.views()
            assert doc["adaptive"] is None
            assert [v["name"] for v in doc["graph_views"]] == ["manual"]
            assert doc["graph_views"][0]["elements"] == [["A", "B"], ["B", "C"]]
        finally:
            handle.stop()
            executor.close()


class TestViewsCli:
    def test_views_text_and_json(self, tmp_path, capsys):
        from repro.cli import main

        engine = GraphAnalyticsEngine(shards=2)
        engine.load_records(small_records())
        engine.add_graph_view(AB_BC.elements, name="gv_manual")
        engine.materialize_aggregate_views(
            [PathAggregationQuery(AB_BC, "sum")] * 3, budget=1
        )
        engine.save(tmp_path / "db")

        assert main(["views", str(tmp_path / "db")]) == 0
        text = capsys.readouterr().out
        assert "gv_manual" in text and "A-B" in text
        assert "graph views (1)" in text
        assert "aggregate views (1)" in text

        assert main(["views", str(tmp_path / "db"), "--json"]) == 0
        import json

        doc = json.loads(capsys.readouterr().out)
        assert doc["graph_views"][0]["name"] == "gv_manual"
        assert doc["graph_views"][0]["rows"] == 12
        assert doc["aggregate_views"][0]["function"] == "sum"

    def test_serve_parser_accepts_adaptive_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve", "db", "--adaptive", "--adaptive-interval", "0.5",
                "--adaptive-budget", "3", "--adaptive-window", "64",
                "--adaptive-min-support", "2", "--adaptive-floor", "0.1",
            ]
        )
        assert args.adaptive and args.adaptive_budget == 3
        assert args.adaptive_interval == 0.5
        plain = build_parser().parse_args(["serve", "db"])
        assert not plain.adaptive

"""Tests for greedy extended set cover (selection) and single-universe
cover (query rewriting)."""

from __future__ import annotations

import pytest

from repro.core import greedy_cover_query, greedy_select_views


def fs(*items):
    return frozenset(items)


class TestGreedySelect:
    def test_selects_covering_view(self):
        universes = [fs(1, 2, 3)]
        candidates = {"v1": fs(1, 2, 3)}
        result = greedy_select_views(universes, candidates, budget=5)
        assert result.selected == ["v1"]

    def test_budget_respected(self):
        universes = [fs(1, 2), fs(3, 4), fs(5, 6)]
        candidates = {"a": fs(1, 2), "b": fs(3, 4), "c": fs(5, 6)}
        result = greedy_select_views(universes, candidates, budget=2)
        assert len(result.selected) == 2

    def test_zero_budget(self):
        result = greedy_select_views([fs(1)], {"a": fs(1)}, budget=0)
        assert result.selected == []

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            greedy_select_views([], {}, budget=-1)

    def test_view_only_counts_for_containing_universes(self):
        # v covers 3 elements but is a subset of no universe: unusable.
        universes = [fs(1, 2), fs(2, 3)]
        candidates = {"v": fs(1, 2, 3)}
        result = greedy_select_views(universes, candidates, budget=3)
        assert result.selected == []

    def test_shared_view_beats_specific(self):
        # v_shared helps both universes; specific views help one each.
        universes = [fs(1, 2, 9), fs(1, 2, 8)]
        candidates = {
            "shared": fs(1, 2),
            "only_first": fs(1, 9),
            "only_second": fs(2, 8),
        }
        result = greedy_select_views(universes, candidates, budget=1)
        assert result.selected == ["shared"]

    def test_stops_when_singleton_is_best(self):
        # After the big view, only single uncovered elements remain —
        # selection must stop rather than burn budget (the §5.2 rule).
        universes = [fs(1, 2, 3, 4)]
        candidates = {"big": fs(1, 2, 3), "tiny": fs(3, 4)}
        result = greedy_select_views(universes, candidates, budget=5)
        assert result.selected == ["big"]
        assert result.stopped_on_singleton

    def test_weights_bias_choice(self):
        universes = [fs(1, 2), fs(3, 4)]
        candidates = {"a": fs(1, 2), "b": fs(3, 4)}
        weighted = greedy_select_views(
            universes, candidates, budget=1, weights={"a": 1.0, "b": 10.0}
        )
        assert weighted.selected == ["b"]

    def test_coverage_report(self):
        universes = [fs(1, 2, 3), fs(1, 2)]
        candidates = {"v": fs(1, 2)}
        result = greedy_select_views(universes, candidates, budget=1)
        assert result.coverage[0] == ["v"]
        assert result.coverage[1] == ["v"]

    def test_rounds_recorded(self):
        universes = [fs(1, 2, 3)]
        candidates = {"v": fs(1, 2, 3)}
        result = greedy_select_views(universes, candidates, budget=1)
        assert result.rounds[0] == ("v", 3)

    def test_marginal_gain_not_total(self):
        # Second pick is judged on *uncovered* elements only.
        universes = [fs(1, 2, 3, 4, 5, 6)]
        candidates = {
            "first": fs(1, 2, 3, 4),
            "overlapping": fs(3, 4, 5, 6),
            "disjoint": fs(5, 6),
        }
        result = greedy_select_views(universes, candidates, budget=2)
        assert result.selected[0] == "first"
        # overlapping gains 2 (5,6) same as disjoint (5,6): tie broken
        # deterministically, but both selections cover everything.
        assert len(result.selected) == 2

    def test_deterministic(self):
        universes = [fs(1, 2), fs(1, 2)]
        candidates = {"a": fs(1, 2), "b": fs(1, 2)}
        first = greedy_select_views(universes, candidates, budget=1).selected
        second = greedy_select_views(universes, candidates, budget=1).selected
        assert first == second


class TestGreedyCoverQuery:
    def test_single_view_cover(self):
        chosen, residue = greedy_cover_query(fs(1, 2, 3), {"v": fs(1, 2, 3)})
        assert chosen == ["v"] and residue == fs()

    def test_partial_cover_leaves_residue(self):
        chosen, residue = greedy_cover_query(fs(1, 2, 3), {"v": fs(1, 2)})
        assert chosen == ["v"] and residue == fs(3)

    def test_ignores_views_not_subset(self):
        chosen, residue = greedy_cover_query(fs(1, 2), {"v": fs(1, 2, 3)})
        assert chosen == [] and residue == fs(1, 2)

    def test_prefers_larger_marginal_cover(self):
        views = {"big": fs(1, 2, 3), "small": fs(1, 2)}
        chosen, _ = greedy_cover_query(fs(1, 2, 3, 4), views)
        assert chosen == ["big"]

    def test_stops_at_gain_one(self):
        # A view covering a single uncovered element is no better than the
        # existing b_i bitmap — don't use it.
        views = {"v": fs(1, 2), "tail": fs(2, 3)}
        chosen, residue = greedy_cover_query(fs(1, 2, 3), views)
        # Either 2-element view may win the tie, but the second one (gain 1
        # after the first) must NOT be used: one b_i bitmap does as well.
        assert len(chosen) == 1
        assert len(residue) == 1

    def test_multiple_views_compose(self):
        views = {"left": fs(1, 2), "right": fs(3, 4)}
        chosen, residue = greedy_cover_query(fs(1, 2, 3, 4), views)
        assert set(chosen) == {"left", "right"} and residue == fs()

    def test_no_views(self):
        chosen, residue = greedy_cover_query(fs(1, 2), {})
        assert chosen == [] and residue == fs(1, 2)

    def test_cover_never_increases_cost(self):
        # Using the chosen views + residue never fetches more columns than
        # the naive per-element plan.
        universe = fs(*range(10))
        views = {
            "a": fs(0, 1, 2, 3),
            "b": fs(3, 4, 5),
            "c": fs(6, 7),
            "d": fs(8, 9),
        }
        chosen, residue = greedy_cover_query(universe, views)
        assert len(chosen) + len(residue) <= len(universe)


class TestDeterministicTieBreaking:
    """Equal-gain rounds must resolve on candidate *content*, not on how
    the candidates happened to be keyed or ordered — the advisor and the
    adaptive maintainer re-key candidates every refresh, so key-dependent
    ties made the chosen view set drift between identical windows."""

    def test_selection_invariant_under_key_renaming(self):
        universes = [fs(1, 2, 9), fs(1, 2, 8), fs(3, 4, 9), fs(3, 4, 8)]
        sets = [fs(1, 2), fs(3, 4), fs(1, 9), fs(3, 8)]
        a = greedy_select_views(
            universes, {f"cand{i}": s for i, s in enumerate(sets)}, budget=2
        )
        b = greedy_select_views(
            universes,
            {f"zz{9 - i}": s for i, s in enumerate(sets)},
            budget=2,
        )
        pick_a = [dict(enumerate(sets))[int(k[4:])] for k in a.selected]
        pick_b = [sets[9 - int(k[2:])] for k in b.selected]
        assert pick_a == pick_b

    def test_selection_invariant_under_insertion_order(self):
        universes = [fs(1, 2), fs(1, 2), fs(3, 4), fs(3, 4)]
        forward = {"a": fs(1, 2), "b": fs(3, 4)}
        backward = {"b": fs(3, 4), "a": fs(1, 2)}
        first = greedy_select_views(universes, forward, budget=1).selected
        second = greedy_select_views(universes, backward, budget=1).selected
        assert [forward[k] for k in first] == [backward[k] for k in second]

    def test_equal_gain_prefers_larger_set(self):
        # Both candidates gain 2 in round one (only two of "wide"'s
        # elements are in any universe it covers... construct equal gain
        # directly): two disjoint pairs, each in two universes.
        universes = [fs(1, 2, 3), fs(1, 2, 3)]
        candidates = {"pair": fs(1, 2), "triple": fs(1, 2, 3)}
        # triple gains 6, pair gains 4: not a tie.  Make a real tie:
        universes = [fs(1, 2), fs(3, 4, 5)]
        candidates = {"small": fs(1, 2), "big": fs(3, 4)}
        # small gains 2 (universe 0), big gains 2 (universe 1): tie ->
        # content order prefers the lexicographically smaller canonical
        # element listing at equal size.
        result = greedy_select_views(universes, candidates, budget=1)
        assert result.selected == ["small"]

    def test_pinned_regression_view_set(self):
        """Pin the exact chosen sets for a fixed workload; shuffling the
        candidate enumeration must not change them."""
        universes = [
            fs("ab", "bc", "cd"),
            fs("ab", "bc", "de"),
            fs("bc", "cd", "de"),
            fs("ab", "cd", "de"),
        ]
        sets = [
            fs("ab", "bc"),
            fs("ab", "cd"),
            fs("bc", "cd"),
            fs("cd", "de"),
            fs("ab", "de"),
            fs("bc", "de"),
        ]
        expected = None
        import random

        for seed in range(6):
            order = list(sets)
            random.Random(seed).shuffle(order)
            keyed = {i: s for i, s in enumerate(order)}
            result = greedy_select_views(universes, keyed, budget=3)
            picked = [keyed[k] for k in result.selected]
            if expected is None:
                expected = picked
            assert picked == expected
        # The pinned outcome itself (content-ranked greedy): round one is
        # a six-way tie at gain 4 resolved to the smallest canonical
        # listing {ab,bc}; round two {cd,de} gains 4; round three is a
        # four-way tie at gain 2 resolved to {ab,cd}.
        assert expected == [fs("ab", "bc"), fs("cd", "de"), fs("ab", "cd")]

    def test_cover_query_tie_invariant_under_view_order(self):
        universe = fs(1, 2, 3, 4)
        forward = {"v1": fs(1, 2), "v2": fs(3, 4)}
        backward = {"v2": fs(3, 4), "v1": fs(1, 2)}
        chosen_f, _ = greedy_cover_query(universe, forward)
        chosen_b, _ = greedy_cover_query(universe, backward)
        assert [forward[k] for k in chosen_f] == [backward[k] for k in chosen_b]

    def test_cover_query_tie_prefers_content_order(self):
        # Equal gain, equal size: the lexicographically smaller element
        # listing wins regardless of insertion order or key names.
        universe = fs("p", "q", "x", "y")
        views = {"zz": fs("x", "y"), "aa": fs("p", "q")}
        chosen, _ = greedy_cover_query(universe, views)
        assert chosen[0] == "aa"
        views_flipped = {"aa": fs("x", "y"), "zz": fs("p", "q")}
        chosen, _ = greedy_cover_query(universe, views_flipped)
        assert chosen[0] == "zz"

"""Tests for the cost-model accounting (IOStats)."""

from __future__ import annotations

import threading

from repro.columnstore import Bitmap, IOStats, IOStatsCollector
from repro.exec import BitmapCache


class TestIOStats:
    def test_defaults_zero(self):
        stats = IOStats()
        assert stats.total_columns_fetched() == 0
        assert stats.structural_columns_fetched() == 0
        assert stats.measure_fetch_columns() == 0

    def test_total_sums_all_column_kinds(self):
        stats = IOStats(
            bitmap_columns_fetched=2,
            measure_columns_fetched=3,
            view_bitmaps_fetched=4,
            view_measure_columns_fetched=5,
        )
        assert stats.total_columns_fetched() == 14

    def test_structural_is_bitmaps_plus_view_bitmaps(self):
        stats = IOStats(bitmap_columns_fetched=2, view_bitmaps_fetched=4)
        assert stats.structural_columns_fetched() == 6

    def test_measure_side(self):
        stats = IOStats(measure_columns_fetched=3, view_measure_columns_fetched=5)
        assert stats.measure_fetch_columns() == 8

    def test_add_accumulates(self):
        a = IOStats(bitmap_columns_fetched=1, measure_values_fetched=10)
        b = IOStats(bitmap_columns_fetched=2, measure_values_fetched=5,
                    partitions_joined=3)
        a.add(b)
        assert a.bitmap_columns_fetched == 3
        assert a.measure_values_fetched == 15
        assert a.partitions_joined == 3

    def test_serving_counters_default_zero(self):
        stats = IOStats()
        assert stats.cache_hits == stats.cache_misses == 0
        assert stats.cache_evictions == 0
        assert stats.batches_served == stats.parallel_tasks == 0
        assert stats.conjunctions_requested() == 0
        assert stats.cache_hit_rate() == 0.0

    def test_conjunctions_requested_is_hits_plus_misses(self):
        stats = IOStats(cache_hits=7, cache_misses=3)
        assert stats.conjunctions_requested() == 10
        assert stats.cache_hit_rate() == 0.7

    def test_add_accumulates_serving_counters(self):
        a = IOStats(cache_hits=1, cache_misses=2, cache_evictions=3,
                    batches_served=1, parallel_tasks=4)
        b = IOStats(cache_hits=10, cache_misses=20, cache_evictions=30,
                    batches_served=2, parallel_tasks=8)
        a.add(b)
        assert a.cache_hits == 11
        assert a.cache_misses == 22
        assert a.cache_evictions == 33
        assert a.batches_served == 3
        assert a.parallel_tasks == 12


class TestCollector:
    def test_record_bitmap_fetch_kinds(self):
        collector = IOStatsCollector()
        collector.record_bitmap_fetch()
        collector.record_bitmap_fetch(is_view=True)
        assert collector.stats.bitmap_columns_fetched == 1
        assert collector.stats.view_bitmaps_fetched == 1

    def test_record_measure_fetch_counts_values(self):
        collector = IOStatsCollector()
        collector.record_measure_fetch(7)
        collector.record_measure_fetch(3, is_view=True)
        assert collector.stats.measure_columns_fetched == 1
        assert collector.stats.view_measure_columns_fetched == 1
        assert collector.stats.measure_values_fetched == 10

    def test_partition_join_single_partition_free(self):
        collector = IOStatsCollector()
        collector.record_partition_join(1)
        assert collector.stats.partitions_joined == 0
        collector.record_partition_join(4)
        assert collector.stats.partitions_joined == 4

    def test_reset(self):
        collector = IOStatsCollector()
        collector.record_bitmap_fetch()
        collector.reset()
        assert collector.stats.total_columns_fetched() == 0

    def test_record_cache_traffic(self):
        collector = IOStatsCollector()
        collector.record_cache_hit()
        collector.record_cache_hit()
        collector.record_cache_miss()
        collector.record_cache_eviction()
        collector.record_cache_eviction(4)
        stats = collector.stats
        assert stats.cache_hits == 2
        assert stats.cache_misses == 1
        assert stats.cache_evictions == 5
        assert stats.conjunctions_requested() == 3

    def test_record_batch(self):
        collector = IOStatsCollector()
        collector.record_batch(8)
        collector.record_batch(3)
        assert collector.stats.batches_served == 2
        assert collector.stats.parallel_tasks == 11

    def test_reset_clears_serving_counters(self):
        collector = IOStatsCollector()
        collector.record_cache_hit()
        collector.record_cache_miss()
        collector.record_cache_eviction(2)
        collector.record_batch(5)
        collector.reset()
        stats = collector.stats
        assert stats.cache_hits == stats.cache_misses == 0
        assert stats.cache_evictions == 0
        assert stats.batches_served == stats.parallel_tasks == 0

    def test_concurrent_increments_do_not_drop(self):
        collector = IOStatsCollector()

        def worker():
            for _ in range(500):
                collector.record_cache_hit()
                collector.record_cache_miss()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert collector.stats.cache_hits == 2000
        assert collector.stats.cache_misses == 2000
        assert collector.stats.conjunctions_requested() == 4000


class TestCacheAccountingIdentity:
    """hits + misses == conjunctions requested, under any access pattern;
    evictions always keep the byte budget honoured."""

    def test_identity_holds_through_cache_traffic(self):
        collector = IOStatsCollector()
        cache = BitmapCache(budget_bytes=24, collector=collector)
        requests = 0
        for i in range(40):
            key = frozenset({("e", str(i % 7))})
            cache.get_or_compute(i % 3, key, lambda i=i: Bitmap.ones(64))
            requests += 1
            stats = collector.stats
            assert stats.cache_hits + stats.cache_misses == requests
            assert stats.conjunctions_requested() == requests
            assert cache.current_bytes() <= cache.budget_bytes
        assert cache.stats.hits == collector.stats.cache_hits
        assert cache.stats.misses == collector.stats.cache_misses
        assert cache.stats.evictions == collector.stats.cache_evictions

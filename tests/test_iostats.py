"""Tests for the cost-model accounting (IOStats)."""

from __future__ import annotations

from repro.columnstore import IOStats, IOStatsCollector


class TestIOStats:
    def test_defaults_zero(self):
        stats = IOStats()
        assert stats.total_columns_fetched() == 0
        assert stats.structural_columns_fetched() == 0
        assert stats.measure_fetch_columns() == 0

    def test_total_sums_all_column_kinds(self):
        stats = IOStats(
            bitmap_columns_fetched=2,
            measure_columns_fetched=3,
            view_bitmaps_fetched=4,
            view_measure_columns_fetched=5,
        )
        assert stats.total_columns_fetched() == 14

    def test_structural_is_bitmaps_plus_view_bitmaps(self):
        stats = IOStats(bitmap_columns_fetched=2, view_bitmaps_fetched=4)
        assert stats.structural_columns_fetched() == 6

    def test_measure_side(self):
        stats = IOStats(measure_columns_fetched=3, view_measure_columns_fetched=5)
        assert stats.measure_fetch_columns() == 8

    def test_add_accumulates(self):
        a = IOStats(bitmap_columns_fetched=1, measure_values_fetched=10)
        b = IOStats(bitmap_columns_fetched=2, measure_values_fetched=5,
                    partitions_joined=3)
        a.add(b)
        assert a.bitmap_columns_fetched == 3
        assert a.measure_values_fetched == 15
        assert a.partitions_joined == 3


class TestCollector:
    def test_record_bitmap_fetch_kinds(self):
        collector = IOStatsCollector()
        collector.record_bitmap_fetch()
        collector.record_bitmap_fetch(is_view=True)
        assert collector.stats.bitmap_columns_fetched == 1
        assert collector.stats.view_bitmaps_fetched == 1

    def test_record_measure_fetch_counts_values(self):
        collector = IOStatsCollector()
        collector.record_measure_fetch(7)
        collector.record_measure_fetch(3, is_view=True)
        assert collector.stats.measure_columns_fetched == 1
        assert collector.stats.view_measure_columns_fetched == 1
        assert collector.stats.measure_values_fetched == 10

    def test_partition_join_single_partition_free(self):
        collector = IOStatsCollector()
        collector.record_partition_join(1)
        assert collector.stats.partitions_joined == 0
        collector.record_partition_join(4)
        assert collector.stats.partitions_joined == 4

    def test_reset(self):
        collector = IOStatsCollector()
        collector.record_bitmap_fetch()
        collector.reset()
        assert collector.stats.total_columns_fetched() == 0

"""Durability and fault-tolerance tests.

Exercises the crash-safety contract of the persistence layer (an
interrupted save at *any* stage leaves the previous relation loadable),
integrity verification (torn writes, bit rot, metadata corruption are
detected as typed errors), graceful view degradation (a damaged view file
drops just that view and queries stay correct on base bitmaps), resumable
bulk ingestion, and the strict/skip/collect ingest error policies.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.columnstore import (
    Bitmap,
    MasterRelation,
    MeasureColumn,
    load_relation,
    save_relation,
)
from repro.core import GraphAnalyticsEngine, GraphQuery, GraphRecord, PathAggregationQuery
from repro.cli import main
from repro.dsl import parse_query
from repro.errors import (
    CorruptionError,
    IngestError,
    ManifestError,
    PathJoinError,
    PersistenceError,
    QuerySyntaxError,
    ReproError,
)
from repro.io import QuarantineReport, read_csv_triplets, read_jsonl, write_jsonl
from tests import faultinject as fi

# -- fixtures ----------------------------------------------------------------


def _relation(n_extra_rows: int = 0) -> MasterRelation:
    """A small relation with one graph view and one aggregate view; the
    v2 variant (``n_extra_rows > 0``) has more records but the same
    columns, so its save runs through the same stage sequence."""
    n = 2 + n_extra_rows
    rel = MasterRelation(partition_width=2)
    rel.append_row({0: 1.0, 1: 2.0})
    rel.append_row({1: 3.0, 2: 4.0})
    for i in range(n_extra_rows):
        rel.append_row({0: 5.0 + i, 2: 6.0})
    rel.add_graph_view("gv1", Bitmap.from_indices(n, [0]))
    rel.add_aggregate_view(
        "av1:sum", MeasureColumn.from_optionals([5.0] + [None] * (n - 1))
    )
    return rel


def _saved_db(tmp_path, name="db"):
    db = tmp_path / name
    save_relation(_relation(), db)
    return db


def _records() -> list[GraphRecord]:
    out = []
    for i in range(10):
        if i % 2 == 0:
            out.append(
                GraphRecord(
                    f"r{i}", {("A", "B"): 1.0 + i, ("B", "C"): 2.0, ("C", "D"): 0.5}
                )
            )
        else:
            out.append(GraphRecord(f"r{i}", {("A", "B"): 1.0, ("D", "E"): float(i)}))
    return out


# -- typed error hierarchy ---------------------------------------------------


class TestErrorHierarchy:
    def test_tree(self):
        assert issubclass(PersistenceError, ReproError)
        assert issubclass(ManifestError, PersistenceError)
        assert issubclass(CorruptionError, PersistenceError)
        assert issubclass(IngestError, ReproError)
        assert issubclass(QuerySyntaxError, ReproError)
        assert issubclass(PathJoinError, ReproError)

    def test_value_error_compat(self):
        # Pre-existing callers catch ValueError; the folded-in types keep that.
        assert issubclass(IngestError, ValueError)
        assert issubclass(QuerySyntaxError, ValueError)
        assert issubclass(PathJoinError, ValueError)

    def test_dsl_reexport_is_same_class(self):
        from repro.dsl import QuerySyntaxError as dsl_qse
        from repro.core import PathJoinError as core_pje

        assert dsl_qse is QuerySyntaxError
        assert core_pje is PathJoinError

    def test_parser_raises_repro_error(self):
        with pytest.raises(ReproError):
            parse_query("A ->")


# -- crash-safe saves --------------------------------------------------------


class TestAtomicSave:
    def test_interrupted_save_at_every_stage_preserves_previous(self, tmp_path):
        stages = fi.save_stage_labels(_relation(1), tmp_path / "scratch")
        assert "committed" in stages and len(stages) > 5
        commit_index = stages.index("committed")
        for i, label in enumerate(stages):
            db = tmp_path / f"db{i}"
            save_relation(_relation(), db)
            with fi.crash_at_stage(i), pytest.raises(fi.SimulatedCrash):
                save_relation(_relation(1), db)
            loaded = load_relation(db)
            if i < commit_index:
                # Crash before the manifest swap: previous version intact.
                assert loaded.n_records == 2, f"stage {label!r} damaged v1"
            else:
                # The swap already happened; the new version is durable.
                assert loaded.n_records == 3, f"stage {label!r} lost v2"
            assert loaded.has_graph_view("gv1")
            assert loaded.has_aggregate_view("av1:sum")

    def test_save_after_crash_recovers_and_collects_debris(self, tmp_path):
        db = _saved_db(tmp_path)
        with fi.crash_at_stage("generation-published"), pytest.raises(fi.SimulatedCrash):
            save_relation(_relation(1), db)
        # Crashed attempt left an uncommitted generation directory behind.
        assert len(list(db.glob("gen-*"))) == 2
        save_relation(_relation(1), db)
        assert load_relation(db).n_records == 3
        assert len(list(db.glob("gen-*"))) == 1
        assert not list(db.glob(".tmp-*"))

    def test_committed_save_replaces_and_gcs_old_generation(self, tmp_path):
        db = _saved_db(tmp_path)
        gen1 = fi.live_manifest(db)["directory"]
        save_relation(_relation(2), db)
        assert load_relation(db).n_records == 4
        assert fi.live_manifest(db)["directory"] != gen1
        assert not (db / gen1).exists()

    def test_app_meta_round_trips_in_same_commit(self, tmp_path):
        db = tmp_path / "db"
        save_relation(_relation(), db, app_meta={"owner": "tests", "epoch": 7})
        assert load_relation(db).app_meta == {"owner": "tests", "epoch": 7}


# -- integrity verification --------------------------------------------------


class TestCorruptionDetection:
    def test_truncated_npy_is_detected(self, tmp_path):
        db = _saved_db(tmp_path)
        fi.truncate_file(fi.data_file(db, "m0_vals.npy"), 4)
        with pytest.raises(CorruptionError, match="torn write"):
            load_relation(db)

    def test_bit_flip_is_detected(self, tmp_path):
        db = _saved_db(tmp_path)
        fi.flip_bit(fi.data_file(db, "m1_vals.npy"))
        with pytest.raises(CorruptionError, match="CRC32"):
            load_relation(db)

    def test_flipped_manifest_checksum_is_detected(self, tmp_path):
        db = _saved_db(tmp_path)
        fi.corrupt_manifest_crc(db, "m0_rows.npy")
        with pytest.raises(CorruptionError, match="CRC32"):
            load_relation(db)

    def test_manifest_garbage_is_manifest_error(self, tmp_path):
        db = _saved_db(tmp_path)
        (db / "manifest.json").write_text("{definitely not json")
        with pytest.raises(ManifestError, match="invalid JSON"):
            load_relation(db)

    def test_manifest_missing_fields(self, tmp_path):
        db = _saved_db(tmp_path)
        (db / "manifest.json").write_text(json.dumps({"format_version": 2}))
        with pytest.raises(ManifestError, match="missing fields"):
            load_relation(db)

    def test_unsupported_format_version(self, tmp_path):
        db = _saved_db(tmp_path)
        manifest = fi.live_manifest(db)
        manifest["format_version"] = 99
        (db / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ManifestError, match="format_version"):
            load_relation(db)

    def test_missing_generation_directory(self, tmp_path):
        db = _saved_db(tmp_path)
        manifest = fi.live_manifest(db)
        manifest["directory"] = "gen-999999"
        (db / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(CorruptionError, match="missing"):
            load_relation(db)

    def test_nonexistent_and_non_relation_dirs(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_relation(tmp_path / "nope")
        (tmp_path / "empty").mkdir()
        with pytest.raises(PersistenceError, match="not a relation directory"):
            load_relation(tmp_path / "empty")

    def test_all_failures_are_repro_errors(self, tmp_path):
        db = _saved_db(tmp_path)
        fi.truncate_file(fi.data_file(db, "m2_rows.npy"), 8)
        with pytest.raises(ReproError):
            load_relation(db)

    def test_verify_false_skips_checksums(self, tmp_path):
        db = _saved_db(tmp_path)
        fi.corrupt_manifest_crc(db, "m0_rows.npy")
        assert load_relation(db, verify=False).n_records == 2


# -- graceful view degradation ----------------------------------------------


class TestViewDegradation:
    def test_missing_view_file_drops_only_that_view(self, tmp_path):
        db = _saved_db(tmp_path)
        fi.data_file(db, "gv_gv1.npy").unlink()
        with pytest.warns(RuntimeWarning, match="gv1"):
            loaded = load_relation(db)
        assert loaded.n_records == 2
        assert not loaded.has_graph_view("gv1")
        assert loaded.has_aggregate_view("av1:sum")
        assert [name for name, _ in loaded.dropped_views] == ["gv1"]

    def test_corrupt_aggregate_view_drops_only_that_view(self, tmp_path):
        db = _saved_db(tmp_path)
        fi.flip_bit(fi.data_file(db, "av_av1:sum_vals.npy"))
        with pytest.warns(RuntimeWarning, match="av1"):
            loaded = load_relation(db)
        assert not loaded.has_aggregate_view("av1:sum")
        assert loaded.has_graph_view("gv1")
        # Base columns are untouched and still verified.
        assert loaded.measures(0)[0] == 1.0

    def test_degraded_engine_answers_queries_identically(self, tmp_path):
        engine = GraphAnalyticsEngine()
        engine.load_records(_records())
        chain = GraphQuery.from_node_chain("A", "B", "C")
        agg_query = PathAggregationQuery(chain, "sum")
        engine.materialize_graph_views([chain], budget=2)
        engine.materialize_aggregate_views([agg_query], budget=2)
        db = tmp_path / "db"
        engine.save(db)

        clean = GraphAnalyticsEngine.load(db)
        assert clean.plan_query(chain).view_names, "fixture must exercise views"
        assert clean.plan_aggregation(agg_query).structural_agg_view_names
        baseline_query = clean.query(chain)
        baseline_agg = clean.aggregate(agg_query)

        manifest = fi.live_manifest(db)
        assert manifest["graph_views"] and manifest["aggregate_views"]
        for name in manifest["graph_views"]:
            fi.flip_bit(fi.data_file(db, f"gv_{name}.npy"))
        for name in manifest["aggregate_views"]:
            fi.truncate_file(fi.data_file(db, f"av_{name}_vals.npy"), 3)

        with pytest.warns(RuntimeWarning):
            degraded = GraphAnalyticsEngine.load(db)
        # The rewriter fell back to base bitmaps / raw measure columns.
        assert degraded.plan_query(chain).view_names == []
        assert degraded.plan_aggregation(agg_query).structural_agg_view_names == []
        result = degraded.query(chain)
        assert result.record_ids == baseline_query.record_ids
        for element, values in baseline_query.measures.items():
            np.testing.assert_allclose(result.measures[element], values)
        agg = degraded.aggregate(agg_query)
        assert agg.record_ids == baseline_agg.record_ids
        assert set(agg.path_values) == set(baseline_agg.path_values)
        for path, values in baseline_agg.path_values.items():
            np.testing.assert_allclose(agg.path_values[path], values)

    def test_sync_views_prunes_phantom_definitions(self, tmp_path):
        engine = GraphAnalyticsEngine()
        engine.load_records(_records())
        chain = GraphQuery.from_node_chain("A", "B", "C")
        name = engine.add_graph_view(chain.elements)
        engine.relation.drop_graph_view(name)  # simulate a refused load
        dropped = engine.sync_views_with_relation()
        assert dropped == [name]
        assert engine.plan_query(chain).view_names == []


# -- resumable bulk loads ----------------------------------------------------


class TestResumableLoad:
    def test_clean_run_marks_checkpoint_complete(self, tmp_path):
        db = tmp_path / "db"
        engine = GraphAnalyticsEngine()
        assert engine.load_records_resumable(iter(_records()), db, batch_size=3) == 10
        state = json.loads((db / "ingest_checkpoint.json").read_text())
        assert state["complete"] and state["loaded"] == 10
        assert GraphAnalyticsEngine.load(db).n_records == 10

    def test_rerun_of_finished_load_is_noop(self, tmp_path):
        db = tmp_path / "db"
        engine = GraphAnalyticsEngine()
        engine.load_records_resumable(iter(_records()), db, batch_size=4)
        again = GraphAnalyticsEngine.load(db)
        assert again.load_records_resumable(iter(_records()), db, batch_size=4) == 0
        assert again.n_records == 10

    def test_crash_mid_load_resumes_where_it_left_off(self, tmp_path):
        db = tmp_path / "db"
        engine = GraphAnalyticsEngine()
        # Kill the third batch's save before its manifest swap: two batches
        # (6 records) are durable, the third is lost with the process.
        with fi.crash_on_nth("manifest-staged", 3), pytest.raises(fi.SimulatedCrash):
            engine.load_records_resumable(iter(_records()), db, batch_size=3)
        survivor = GraphAnalyticsEngine.load(db)
        assert survivor.n_records == 6
        assert survivor.load_records_resumable(iter(_records()), db, batch_size=3) == 4
        assert survivor.n_records == 10
        final = GraphAnalyticsEngine.load(db)
        assert final.record_ids_at(np.arange(10)) == [r.record_id for r in _records()]
        assert len(final.query(GraphQuery([("A", "B")]))) == 10

    def test_crash_between_save_and_checkpoint_write(self, tmp_path):
        db = tmp_path / "db"
        engine = GraphAnalyticsEngine()
        # Crash after the second batch committed but before its checkpoint
        # update: the saved engine is ahead of the checkpoint, which resume
        # must trust (the engine is the source of truth).
        with fi.crash_on_nth("cleaned", 2), pytest.raises(fi.SimulatedCrash):
            engine.load_records_resumable(iter(_records()), db, batch_size=3)
        checkpoint = json.loads((db / "ingest_checkpoint.json").read_text())
        assert checkpoint["loaded"] == 3
        survivor = GraphAnalyticsEngine.load(db)
        assert survivor.n_records == 6
        assert survivor.load_records_resumable(iter(_records()), db, batch_size=3) == 4
        assert survivor.n_records == 10

    def test_corrupt_checkpoint_is_typed_error(self, tmp_path):
        db = tmp_path / "db"
        db.mkdir()
        (db / "ingest_checkpoint.json").write_text("}{")
        with pytest.raises(ManifestError, match="checkpoint"):
            GraphAnalyticsEngine().load_records_resumable(iter(_records()), db)

    def test_truncated_source_on_resume_is_typed_error(self, tmp_path):
        db = tmp_path / "db"
        engine = GraphAnalyticsEngine()
        with fi.crash_on_nth("manifest-staged", 3), pytest.raises(fi.SimulatedCrash):
            engine.load_records_resumable(iter(_records()), db, batch_size=3)
        survivor = GraphAnalyticsEngine.load(db)
        with pytest.raises(IngestError, match="already loaded"):
            survivor.load_records_resumable(iter(_records()[:4]), db, batch_size=3)


# -- ingest error policies ---------------------------------------------------

_GOOD = [
    '{"id": "g1", "measures": [["A", "B", 1.0]]}',
    '{"id": "g2", "measures": [["B", "C", 2.0], ["C", "C", 0.5]]}',
    '{"id": "g3", "measures": [["A", "D", 4.0]]}',
]
_BAD = [
    "{broken json",
    '{"id": "b2", "measures": [["A", "B"]]}',
    '{"id": "b3", "measures": [["A", "B", NaN]]}',
]


def _dirty_jsonl(tmp_path):
    path = tmp_path / "records.jsonl"
    lines = [_GOOD[0], _BAD[0], _GOOD[1], _BAD[1], _BAD[2], _GOOD[2]]
    path.write_text("\n".join(lines) + "\n")
    return path


class TestIngestPolicies:
    def test_strict_raises_with_file_and_line(self, tmp_path):
        path = _dirty_jsonl(tmp_path)
        with pytest.raises(IngestError, match=r"records\.jsonl:2: invalid JSON"):
            list(read_jsonl(path))

    def test_strict_measure_shape_message(self, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text(_BAD[1] + "\n")
        with pytest.raises(IngestError, match=r"records\.jsonl:1: measure entry must have 3 elements"):
            list(read_jsonl(path))

    def test_non_finite_measures_rejected(self, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text('{"id": "x", "measures": [["A", "B", Infinity]]}\n')
        with pytest.raises(IngestError, match="finite"):
            list(read_jsonl(path))

    def test_skip_policy_drops_bad_lines_silently(self, tmp_path):
        path = _dirty_jsonl(tmp_path)
        records = list(read_jsonl(path, policy="skip"))
        assert [r.record_id for r in records] == ["g1", "g2", "g3"]

    def test_collect_policy_returns_goods_and_quarantines_bads(self, tmp_path):
        path = _dirty_jsonl(tmp_path)
        report = QuarantineReport()
        records = list(read_jsonl(path, policy="collect", report=report))
        assert [r.record_id for r in records] == ["g1", "g2", "g3"]
        assert len(report) == 3
        assert [e.line_no for e in report] == [2, 4, 5]
        assert "invalid JSON" in report.entries[0].reason
        assert "3 elements" in report.entries[1].reason
        assert "finite" in report.entries[2].reason
        assert str(path) in str(report.entries[0])
        assert json.loads(report.to_json())[0]["line"] == 2

    def test_unknown_policy_rejected(self, tmp_path):
        path = _dirty_jsonl(tmp_path)
        with pytest.raises(ValueError, match="policy"):
            list(read_jsonl(path, policy="yolo"))

    def test_csv_collect_drops_fully_bad_record(self, tmp_path):
        path = tmp_path / "records.csv"
        path.write_text(
            "recid,source,target,value\n"
            "r1,A,B,1.5\n"
            "r1,B,C,2.5\n"
            "r2,A,B\n"
            "r2,B,C,oops\n"
            "r3,A,B,3.0\n"
        )
        report = QuarantineReport()
        records = list(read_csv_triplets(path, policy="collect", report=report))
        assert [r.record_id for r in records] == ["r1", "r3"]
        assert len(report) == 2
        assert [e.line_no for e in report] == [4, 5]

    def test_csv_strict_reports_row(self, tmp_path):
        path = tmp_path / "records.csv"
        path.write_text("r1,A,B,1.0\nr1,A,C,nan\n")
        with pytest.raises(IngestError, match=r"records\.csv:2: .*finite"):
            list(read_csv_triplets(path))


# -- CLI robustness ----------------------------------------------------------


class TestCliRobustness:
    def test_missing_database_is_friendly_error(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "nope"), "{(A,B)}"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_corrupt_database_is_friendly_error(self, tmp_path, capsys):
        source = tmp_path / "records.jsonl"
        write_jsonl(_records()[:3], source)
        db = tmp_path / "db"
        assert main(["load", str(source), str(db)]) == 0
        (db / "manifest.json").write_text("garbage")
        capsys.readouterr()
        for command in (["stats", str(db)],
                        ["query", str(db), "{(A,B)}"],
                        ["aggregate", str(db), "SUM {(A,B)}"]):
            assert main(command) == 2
            err = capsys.readouterr().err
            assert err.startswith("error:")
            assert "Traceback" not in err

    def test_load_collect_policy_quarantines_and_succeeds(self, tmp_path, capsys):
        source = _dirty_jsonl(tmp_path)
        db = tmp_path / "db"
        qfile = tmp_path / "quarantine.json"
        rc = main([
            "load", str(source), str(db),
            "--on-error", "collect", "--quarantine", str(qfile),
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "loaded 3 records" in captured.out
        assert "3 line(s) quarantined" in captured.err
        assert len(json.loads(qfile.read_text())) == 3
        assert main(["query", str(db), "{(A,B)}", "--ids-only"]) == 0

    def test_load_strict_dirty_source_fails_cleanly(self, tmp_path, capsys):
        source = _dirty_jsonl(tmp_path)
        assert main(["load", str(source), str(tmp_path / "db")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_load_resume_is_idempotent(self, tmp_path, capsys):
        source = tmp_path / "records.jsonl"
        write_jsonl(_records(), source)
        db = tmp_path / "db"
        assert main(["load", str(source), str(db), "--resume", "--batch-size", "4"]) == 0
        assert "loaded 10 records" in capsys.readouterr().out
        assert main(["load", str(source), str(db), "--resume", "--batch-size", "4"]) == 0
        assert "loaded 0 records" in capsys.readouterr().out


# -- shard-level fault injection ---------------------------------------------


class TestShardLevelFaults:
    """Live-shard failures (vs the at-rest corruption above): a shard's
    storage starts erroring *mid-query*.  Contract: typed error by
    default; under ``partial_ok`` an answer that is bit-exact on the
    healthy shards plus an accurate skipped-range report; transient blips
    absorbed by retries without the caller noticing."""

    N_SHARDS = 5

    def _engine(self, **policy_kw):
        from repro.resilience import ResiliencePolicy

        engine = GraphAnalyticsEngine(shards=self.N_SHARDS)
        engine.load_records(_records())
        engine.use_resilience(
            ResiliencePolicy(sleep=lambda _s: None, **policy_kw)
        )
        return engine

    def _healthy_oracle(self, dead_shard):
        """An engine built only from the records outside the dead shard's
        record range — ground truth for a degraded answer."""
        engine = GraphAnalyticsEngine(shards=self.N_SHARDS)
        engine.load_records(_records())
        starts = engine.relation.shard_starts()
        start = starts[dead_shard]
        stop = (
            starts[dead_shard + 1]
            if dead_shard + 1 < self.N_SHARDS
            else engine.n_records
        )
        healthy = [
            r for i, r in enumerate(_records()) if not start <= i < stop
        ]
        oracle = GraphAnalyticsEngine()
        oracle.load_records(healthy)
        return oracle, (start, stop)

    def test_corrupt_shard_mid_query_is_a_typed_error(self):
        from repro.errors import ShardExecutionError

        engine = self._engine(attempts=2)
        fi.install_faulty_shard(engine, shard=2, fail_times=None)
        with pytest.raises(ShardExecutionError) as exc_info:
            engine.query(parse_query("A -> B -> C"))
        assert exc_info.value.shard == 2
        assert isinstance(exc_info.value, ReproError)

    def test_degraded_answers_match_the_healthy_shard_oracle(self):
        from repro.resilience import QueryContext

        for dead in (0, 2, self.N_SHARDS - 1):
            engine = self._engine(attempts=1)
            fi.install_faulty_shard(engine, shard=dead, fail_times=None)
            oracle, (start, stop) = self._healthy_oracle(dead)
            for dsl in ("A -> B -> C", "{(A,B)}", "{(D,E)}"):
                query = parse_query(dsl)
                ctx = QueryContext.start(partial_ok=True)
                degraded = engine.query(query, ctx=ctx)
                expected = oracle.query(query)
                assert degraded.record_ids == expected.record_ids, dsl
                for edge, values in expected.measures.items():
                    got = degraded.measures[edge]
                    assert len(got) == len(values)
                    for a, b in zip(got, values):
                        assert (a == b) or (a != a and b != b)
                assert degraded.degraded.skipped_ranges() == [(start, stop)]

    def test_degraded_aggregation_matches_oracle(self):
        from repro.dsl import parse_aggregation
        from repro.resilience import QueryContext

        engine = self._engine(attempts=1)
        fi.install_faulty_shard(engine, shard=1, fail_times=None)
        oracle, (start, stop) = self._healthy_oracle(1)
        agg = parse_aggregation("SUM A -> B -> C")
        ctx = QueryContext.start(partial_ok=True)
        degraded = engine.aggregate(agg, ctx=ctx)
        expected = oracle.aggregate(agg)
        assert degraded.record_ids == expected.record_ids
        for path, values in expected.path_values.items():
            assert list(degraded.path_values[path]) == list(values)
        assert degraded.degraded.n_records_skipped == stop - start

    def test_transient_then_healthy_io_is_invisible_to_callers(self):
        engine = self._engine(attempts=4, breaker_threshold=10)
        baseline = engine.query(parse_query("A -> B -> C")).record_ids
        proxy = fi.install_faulty_shard(engine, shard=0, fail_times=3)
        result = engine.query(parse_query("A -> B -> C"))
        assert result.record_ids == baseline
        assert result.degraded is None
        assert proxy.failures == 3  # all three blips retried through

    def test_breaker_stops_retry_storms_against_a_dead_shard(self):
        from repro.errors import ShardExecutionError

        engine = self._engine(
            attempts=2, breaker_threshold=3, breaker_reset_after=3600.0
        )
        proxy = fi.install_faulty_shard(engine, shard=1, fail_times=None)
        for _ in range(10):
            with pytest.raises(ShardExecutionError):
                engine.query(parse_query("{(A,B)}"))
        # Without the breaker this would be 10 queries x 2 attempts = 20
        # probes; the breaker capped actual shard touches at its threshold.
        assert proxy.failures == 3

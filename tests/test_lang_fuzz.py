"""Property fuzzing for the query-language front-end.

Two generators, one law each:

* a *core-object* generator builds random ``GraphQuery`` /
  ``PathAggregationQuery`` trees and checks the tentpole round trip
  ``lower(parse(unparse(q))) == q``;
* a *surface-AST* generator builds random typed ASTs (markers, open
  ends, composites, joins) and checks that unparse → parse → lower
  agrees with lowering the generated AST directly, plus canonical
  idempotency.

A bounded, seeded (non-hypothesis) differential then runs a fuzzed
query pool through unparse → parse → execute under serial, thread and
process exec modes and demands bit-identical results against direct
Python-object construction.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import GraphQuery, PathAggregationQuery
from repro.core.query import And, AndNot, Or
from repro.lang import canonical, parse_statement, unparse
from repro.lang.ast import (
    NO_SPAN,
    Aggregate,
    AndExpr,
    AndNotExpr,
    JoinExpr,
    Name,
    Node,
    OrExpr,
    PathPattern,
    Step,
)
from repro.lang.lower import lower_statement
from repro.lang.unparse import unparse_ast

FUZZ_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Labels stress the quoting layer: bare-safe words, hyphens (the
# ambiguity regression), keywords, function names, and escape-needing
# strings.  Distinctness within a path is handled per-strategy.
LABELS = st.one_of(
    st.from_regex(r"[A-Za-z][A-Za-z0-9_.]{0,5}", fullmatch=True),
    st.sampled_from(
        ["hub-1", "a-b-c", "AND", "or", "JOIN", "not", "sum", "AVG", "->x"]
    ),
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs",), max_codepoint=0x2FF),
        min_size=1,
        max_size=6,
    ),
)


# --- core-object strategies -------------------------------------------------


@st.composite
def chain_queries(draw):
    nodes = draw(st.lists(LABELS, min_size=2, max_size=5, unique=True))
    measured = draw(st.sets(st.sampled_from(nodes), max_size=len(nodes)))
    elements = list(zip(nodes, nodes[1:]))
    elements += [(n, n) for n in nodes if n in measured]
    return GraphQuery(elements)


@st.composite
def element_set_queries(draw):
    pairs = draw(
        st.lists(st.tuples(LABELS, LABELS), min_size=1, max_size=4, unique=True)
    )
    return GraphQuery(pairs)


@st.composite
def single_node_queries(draw):
    label = draw(LABELS)
    return GraphQuery([(label, label)])


LEAF_QUERIES = st.one_of(chain_queries(), element_set_queries(), single_node_queries())


@st.composite
def boolean_queries(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(LEAF_QUERIES)
    op = draw(st.sampled_from([And, Or, AndNot]))
    return op(
        draw(boolean_queries(depth=depth - 1)), draw(boolean_queries(depth=depth - 1))
    )


STATEMENTS = st.one_of(
    boolean_queries(),
    st.builds(
        PathAggregationQuery,
        LEAF_QUERIES,
        st.sampled_from(["sum", "avg", "min", "max", "count"]),
    ),
)


class TestCoreObjectRoundtrip:
    @FUZZ_SETTINGS
    @given(STATEMENTS)
    def test_unparse_parse_lower_is_identity(self, query):
        text = unparse(query)
        assert parse_statement(text) == query

    @FUZZ_SETTINGS
    @given(STATEMENTS)
    def test_canonical_text_is_idempotent(self, query):
        text = unparse(query)
        assert canonical(text) == text


# --- surface-AST strategies -------------------------------------------------


def _node(label, measured=False):
    return Node(Name(label, NO_SPAN, quoted=False), measured, NO_SPAN)


@st.composite
def path_patterns(draw):
    labels = draw(st.lists(LABELS, min_size=2, max_size=4, unique=True))
    steps = []
    for label in labels:
        measured = draw(st.booleans())
        steps.append(Step((_node(label, measured),), NO_SPAN))
    # composite first step over spare labels, when available
    spare = draw(st.lists(LABELS, max_size=2, unique=True))
    extra = [s for s in spare if s not in labels]
    if extra and draw(st.booleans()):
        head = steps[0].nodes + tuple(_node(s) for s in extra)
        steps[0] = Step(head, NO_SPAN)
    open_start = draw(st.booleans())
    open_end = draw(st.booleans())
    return PathPattern(tuple(steps), open_start, open_end, NO_SPAN)


@st.composite
def surface_asts(draw, depth=1):
    if depth == 0 or draw(st.booleans()):
        return draw(path_patterns())
    op = draw(st.sampled_from([AndExpr, OrExpr, AndNotExpr]))
    return op(
        draw(surface_asts(depth=depth - 1)), draw(surface_asts(depth=depth - 1)), NO_SPAN
    )


@st.composite
def joined_paths(draw):
    # a JOIN whose shared node makes the sides composable: left open end,
    # right closed start at the same node, disjoint remainders.
    labels = draw(st.lists(LABELS, min_size=5, max_size=5, unique=True))
    a, b, c, d, e = labels
    shared_measured = draw(st.booleans())
    left = PathPattern(
        tuple(Step((_node(x),), NO_SPAN) for x in (a, b, c)),
        False,
        True,
        NO_SPAN,
    )
    right = PathPattern(
        (
            Step((_node(c, shared_measured),), NO_SPAN),
            Step((_node(d),), NO_SPAN),
            Step((_node(e),), NO_SPAN),
        ),
        False,
        False,
        NO_SPAN,
    )
    return JoinExpr(left, right, NO_SPAN)


SURFACE_STATEMENTS = st.one_of(
    surface_asts(),
    joined_paths(),
    st.builds(
        lambda fn, expr: Aggregate(Name(fn, NO_SPAN, quoted=False), expr, NO_SPAN),
        st.sampled_from(["sum", "avg", "min", "max", "count"]),
        path_patterns(),
    ),
)


def _lower_or_none(ast):
    from repro.errors import QuerySyntaxError

    try:
        return lower_statement(ast, source="")
    except QuerySyntaxError:
        return None


class TestSurfaceAstRoundtrip:
    @FUZZ_SETTINGS
    @given(SURFACE_STATEMENTS)
    def test_render_parse_lower_matches_direct_lowering(self, ast):
        direct = _lower_or_none(ast)
        text = unparse_ast(ast)
        if direct is None:
            with pytest.raises(Exception):
                parse_statement(text)
            return
        assert parse_statement(text) == direct

    @FUZZ_SETTINGS
    @given(SURFACE_STATEMENTS)
    def test_canonical_of_rendered_surface_is_stable(self, ast):
        if _lower_or_none(ast) is None:
            return
        once = canonical(unparse_ast(ast))
        assert canonical(once) == once


# --- exec-mode differential -------------------------------------------------


# The NY corpus uses integer node IDs; the text form needs string
# labels, so the differential remaps every label to "n<id>" on both the
# record and the query side.


def _as_text_edge(edge):
    u, v = edge
    return (f"n{u}", f"n{v}")


def _as_text_query(query):
    if isinstance(query, PathAggregationQuery):
        return PathAggregationQuery(_as_text_query(query.query), query.function)
    return GraphQuery(_as_text_edge(e) for e in query.elements)


@pytest.fixture(scope="module")
def diff_corpus():
    from repro.workloads import build_dataset

    return build_dataset("NY", n_records=120, seed=31)


@pytest.fixture(scope="module")
def diff_queries(diff_corpus):
    from repro.workloads import as_aggregate_queries, sample_path_queries

    queries = sample_path_queries(diff_corpus, n_queries=8, n_edges=3, seed=32)
    pool = list(queries) + as_aggregate_queries(queries[:4])
    return [_as_text_query(q) for q in pool]


def _fresh_engine(corpus, shards=3):
    from repro.core import GraphAnalyticsEngine, GraphRecord

    engine = GraphAnalyticsEngine(shards=shards)
    engine.load_records(
        GraphRecord(
            rec.record_id,
            {_as_text_edge(e): w for e, w in rec.measures().items()},
        )
        for rec in corpus.to_records()
    )
    return engine


def _result_key(result):
    """Bit-exact fingerprint: matching records plus every measure array."""
    if hasattr(result, "path_values"):  # PathAggregationResult
        values = tuple(
            (repr(path), arr.tobytes())
            for path, arr in sorted(
                result.path_values.items(), key=lambda kv: repr(kv[0])
            )
        )
        return ("agg", tuple(result.record_ids), values)
    measures = tuple(
        (edge, arr.tobytes()) for edge, arr in sorted(result.measures.items())
    )
    return ("query", tuple(result.record_ids), measures)


class TestExecModeDifferential:
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_text_pipeline_matches_direct_objects(self, mode, diff_corpus, diff_queries):
        from repro.exec import QueryExecutor

        engine = _fresh_engine(diff_corpus)
        executor = QueryExecutor(engine, jobs=1, exec_mode=mode, workers=2)
        try:
            for query in diff_queries:
                reparsed = parse_statement(unparse(query))
                assert reparsed == query
                direct = executor.run_one(query)
                via_text = executor.run_one(reparsed)
                assert _result_key(via_text) == _result_key(direct)
        finally:
            executor.close()

    def test_modes_agree_with_each_other(self, diff_corpus, diff_queries):
        from repro.exec import QueryExecutor

        engine = _fresh_engine(diff_corpus)
        keys = {}
        for mode in ("serial", "thread", "process"):
            executor = QueryExecutor(engine, jobs=1, exec_mode=mode, workers=2)
            try:
                keys[mode] = [
                    _result_key(executor.run_one(parse_statement(unparse(q))))
                    for q in diff_queries
                ]
            finally:
                executor.close()
        assert keys["serial"] == keys["thread"] == keys["process"]

"""MetricsRegistry: metric semantics, deterministic export, publishers."""

from __future__ import annotations

import json
import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GraphAnalyticsEngine, GraphQuery, GraphRecord
from repro.exec import BitmapCache, QueryExecutor
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_monotonic(self):
        c = Counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_concurrent_increments_all_land(self):
        c = Counter("n")

        def bump():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestGauge:
    def test_moves_both_ways(self):
        g = Gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12
        assert g.to_dict() == {"type": "gauge", "value": 12.0}


class TestHistogram:
    def test_summary_fields(self):
        h = Histogram("h")
        for v in [1, 2, 3, 4, 5]:
            h.observe(v)
        payload = h.to_dict()
        assert payload["count"] == 5
        assert payload["sum"] == 15
        assert payload["mean"] == 3
        assert payload["min"] == 1 and payload["max"] == 5
        assert payload["p50"] == 3
        assert payload["p99"] == 5

    def test_empty(self):
        assert Histogram("h").to_dict() == {"type": "histogram", "count": 0}
        assert math.isnan(Histogram("h").percentile(50))

    def test_percentile_bounds(self):
        h = Histogram("h")
        h.observe(1)
        with pytest.raises(ValueError):
            h.percentile(101)
        assert h.percentile(0) == 1

    def test_count_stays_exact_past_sample_cap(self):
        h = Histogram("h", max_samples=8)
        for v in range(100):
            h.observe(v)
        assert h.count == 100
        assert h.sum == sum(range(100))
        assert h.to_dict()["max"] == 99  # min/max exact, not window-bound
        assert h.to_dict()["min"] == 0

    def test_invalid_max_samples(self):
        with pytest.raises(ValueError):
            Histogram("h", max_samples=0)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_percentiles_are_order_statistics(self, values):
        h = Histogram("h")
        for v in values:
            h.observe(v)
        ordered = sorted(values)
        assert h.percentile(0) == ordered[0]
        assert h.percentile(100) == ordered[-1]
        assert h.percentile(50) in ordered


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.get("a") is not None
        assert reg.get("missing") is None

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_export_is_sorted_and_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("z.last").inc(1)
        reg.gauge("a.first").set(2)
        reg.histogram("m.mid").observe(3)
        assert reg.names() == ["a.first", "m.mid", "z.last"]
        assert list(reg.to_dict()) == ["a.first", "m.mid", "z.last"]
        assert reg.to_json() == reg.to_json()
        parsed = json.loads(reg.to_json())
        assert parsed["z.last"]["value"] == 1

    def test_render_empty_and_populated(self):
        reg = MetricsRegistry()
        assert reg.render() == "(no metrics recorded)"
        reg.counter("a").inc(2)
        reg.histogram("h").observe(0.5)
        text = reg.render()
        assert "a" in text and "counter" in text
        assert "count=1" in text

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.names() == []

    def test_default_registry_swap(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous


def _tiny_engine() -> GraphAnalyticsEngine:
    engine = GraphAnalyticsEngine()
    engine.load_records(
        [
            GraphRecord("r1", {("a", "b"): 1.0, ("b", "c"): 2.0}),
            GraphRecord("r2", {("a", "b"): 3.0}),
        ]
    )
    return engine


class TestPublishers:
    """IOStatsCollector, BitmapCache, and QueryExecutor all publish."""

    def test_collector_mirrors_into_registry(self):
        engine = _tiny_engine()
        reg = MetricsRegistry()
        engine.use_metrics(reg)
        engine.query(GraphQuery([("a", "b"), ("b", "c")]))
        stats = engine.stats
        assert (
            reg.get("io.bitmap_columns_fetched").value
            == stats.bitmap_columns_fetched
        )
        assert (
            reg.get("io.measure_values_fetched").value
            == stats.measure_values_fetched
        )
        assert reg.get("io.bitmap_bytes_fetched").value == (
            stats.bitmap_bytes_fetched
        )

    def test_unpublished_engine_touches_no_registry(self):
        engine = _tiny_engine()
        engine.query(GraphQuery([("a", "b")]))
        assert engine.collector.registry is None

    def test_cache_publishes_traffic_and_gauges(self):
        engine = _tiny_engine()
        reg = MetricsRegistry()
        cache = BitmapCache(4 << 20, registry=reg)
        engine.use_bitmap_cache(cache)
        query = GraphQuery([("a", "b"), ("b", "c")])
        engine.query(query)
        engine.query(query)
        assert reg.get("cache.misses").value == cache.stats.misses
        assert reg.get("cache.hits").value == cache.stats.hits > 0
        assert reg.get("cache.entries").value == len(cache)
        assert reg.get("cache.bytes_held").value == cache.current_bytes()

    def test_executor_latency_histograms(self):
        engine = _tiny_engine()
        reg = MetricsRegistry()
        with QueryExecutor(engine, jobs=2, cache_mb=4, registry=reg) as ex:
            ex.run_batch(
                [GraphQuery([("a", "b")]), GraphQuery([("b", "c")])],
                fetch_measures=False,
            )
        assert reg.get("exec.queries_served").value == 2
        assert reg.get("exec.request_seconds").count == 2
        assert reg.get("exec.query_seconds").count == 2
        assert reg.get("exec.batch_size").to_dict()["max"] == 2
        # engine-level publishers were installed transitively
        assert reg.get("io.bitmap_columns_fetched").value > 0
        assert reg.get("cache.misses").value > 0

    def test_registry_off_by_default(self):
        engine = _tiny_engine()
        with QueryExecutor(engine, jobs=1, cache_mb=4) as ex:
            ex.run_one(GraphQuery([("a", "b")]))
        assert ex.registry is None

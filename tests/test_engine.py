"""Integration tests for the engine facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    GraphAnalyticsEngine,
    GraphQuery,
    GraphRecord,
    Path,
    PathAggregationQuery,
)


def chain_record(rid, nodes, values):
    return GraphRecord.from_walk(rid, nodes, edge_measures=values)


@pytest.fixture
def engine():
    e = GraphAnalyticsEngine()
    e.load_records(
        [
            chain_record("r1", ["A", "B", "C", "D"], [1.0, 2.0, 3.0]),
            chain_record("r2", ["A", "B", "C"], [4.0, 5.0]),
            chain_record("r3", ["B", "C", "D", "E"], [6.0, 7.0, 8.0]),
            chain_record("r4", ["X", "Y"], [9.0]),
        ]
    )
    return e


class TestLoading:
    def test_load_counts(self, engine):
        assert engine.n_records == 4
        assert len(engine.catalog) == 5

    def test_load_columnar_matches_row_loading(self):
        row_engine = GraphAnalyticsEngine()
        row_engine.load_records(
            [
                GraphRecord("r0", {("A", "B"): 1.0}),
                GraphRecord("r1", {("A", "B"): 2.0, ("B", "C"): 3.0}),
            ]
        )
        col_engine = GraphAnalyticsEngine()
        col_engine.load_columnar(
            ["r0", "r1"],
            {
                ("A", "B"): (np.array([0, 1]), np.array([1.0, 2.0])),
                ("B", "C"): (np.array([1]), np.array([3.0])),
            },
        )
        q = GraphQuery([("A", "B")])
        assert row_engine.query(q).record_ids == col_engine.query(q).record_ids

    def test_incremental_columnar_load(self):
        e = GraphAnalyticsEngine()
        e.load_columnar(["a"], {("A", "B"): (np.array([0]), np.array([1.0]))})
        e.load_columnar(["b"], {("A", "B"): (np.array([0]), np.array([2.0]))})
        result = e.query(GraphQuery([("A", "B")]))
        assert result.record_ids == ["a", "b"]

    def test_measured_nodes_tracked(self):
        e = GraphAnalyticsEngine()
        e.load_records([GraphRecord("r", {("A", "A"): 1.0, ("A", "B"): 2.0})])
        assert e.measured_nodes == {"A"}


class TestQuery:
    def test_simple_match(self, engine):
        result = engine.query(GraphQuery.from_node_chain("A", "B", "C"))
        assert result.record_ids == ["r1", "r2"]

    def test_no_match(self, engine):
        result = engine.query(GraphQuery.from_node_chain("D", "A"))
        assert result.record_ids == []

    def test_unknown_edge_empty(self, engine):
        result = engine.query(GraphQuery([("NOPE", "NADA")]))
        assert len(result) == 0

    def test_measures_fetched(self, engine):
        result = engine.query(GraphQuery([("A", "B")]))
        assert result.measures[("A", "B")].tolist() == [1.0, 4.0]

    def test_fetch_measures_false(self, engine):
        result = engine.query(GraphQuery([("A", "B")]), fetch_measures=False)
        assert result.measures == {}

    def test_result_len_and_values(self, engine):
        result = engine.query(GraphQuery([("B", "C")]))
        assert len(result) == 3
        assert result.n_measure_values() == 3

    def test_expression_query(self, engine):
        a = GraphQuery([("A", "B")])
        d = GraphQuery([("C", "D")])
        result = engine.query(a & d)
        assert result.record_ids == ["r1"]
        result = engine.query(a - d)
        assert result.record_ids == ["r2"]

    def test_expression_measures_union_of_atoms(self, engine):
        a = GraphQuery([("A", "B")])
        b = GraphQuery([("B", "C")])
        result = engine.query(a | b)
        assert set(result.measures) == {("A", "B"), ("B", "C")}

    def test_evaluate_unknown_type(self, engine):
        with pytest.raises(TypeError):
            engine.evaluate("query")

    def test_matches_reference_semantics(self, engine):
        # Bitmap answers must equal per-record containment checks.
        records = [
            chain_record("r1", ["A", "B", "C", "D"], [1.0, 2.0, 3.0]),
            chain_record("r2", ["A", "B", "C"], [4.0, 5.0]),
            chain_record("r3", ["B", "C", "D", "E"], [6.0, 7.0, 8.0]),
            chain_record("r4", ["X", "Y"], [9.0]),
        ]
        for q in [
            GraphQuery([("A", "B")]),
            GraphQuery.from_node_chain("B", "C", "D"),
            GraphQuery([("X", "Y")]),
        ]:
            expected = [r.record_id for r in records if q.matches(r)]
            assert engine.query(q).record_ids == expected


class TestAggregation:
    def test_sum_along_chain(self, engine):
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "sum")
        result = engine.aggregate(q)
        assert result.record_ids == ["r1", "r2"]
        values = result.path_values[Path.closed("A", "B", "C")]
        assert values.tolist() == [3.0, 9.0]

    def test_max_along_chain(self, engine):
        q = PathAggregationQuery(GraphQuery.from_node_chain("B", "C", "D"), "max")
        result = engine.aggregate(q)
        values = result.path_values[Path.closed("B", "C", "D")]
        assert values.tolist() == [3.0, 7.0]

    def test_avg(self, engine):
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "avg")
        values = engine.aggregate(q).path_values[Path.closed("A", "B", "C")]
        assert values.tolist() == [1.5, 4.5]

    def test_empty_answer(self, engine):
        q = PathAggregationQuery(GraphQuery([("NOPE", "NADA")]), "sum")
        result = engine.aggregate(q)
        assert len(result) == 0

    def test_diamond_two_path_values(self):
        e = GraphAnalyticsEngine()
        e.load_records(
            [
                GraphRecord(
                    "d1",
                    {
                        ("A", "B"): 1.0,
                        ("A", "C"): 2.0,
                        ("B", "D"): 3.0,
                        ("C", "D"): 4.0,
                    },
                )
            ]
        )
        q = PathAggregationQuery(
            GraphQuery([("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")]), "sum"
        )
        result = e.aggregate(q)
        assert result.path_values[Path.closed("A", "B", "D")].tolist() == [4.0]
        assert result.path_values[Path.closed("A", "C", "D")].tolist() == [6.0]

    def test_node_measures_participate(self):
        e = GraphAnalyticsEngine()
        e.load_records(
            [
                GraphRecord(
                    "r",
                    {("A", "B"): 1.0, ("B", "B"): 10.0, ("B", "C"): 2.0},
                )
            ]
        )
        q = PathAggregationQuery(
            GraphQuery([("A", "B"), ("B", "B"), ("B", "C")]), "sum"
        )
        result = e.aggregate(q)
        values = result.path_values[Path.closed("A", "B", "C")]
        assert values.tolist() == [13.0]


class TestViewsEndToEnd:
    def test_graph_views_preserve_answers(self, engine):
        queries = [
            GraphQuery.from_node_chain("A", "B", "C"),
            GraphQuery.from_node_chain("B", "C", "D"),
        ]
        before = [engine.query(q).record_ids for q in queries]
        report = engine.materialize_graph_views(queries, budget=5)
        assert report.selected
        after = [engine.query(q).record_ids for q in queries]
        assert before == after

    def test_views_reduce_bitmap_fetches(self, engine):
        q = GraphQuery.from_node_chain("A", "B", "C", "D")
        engine.reset_stats()
        engine.query(q, fetch_measures=False)
        cost_before = engine.stats.structural_columns_fetched()
        engine.materialize_graph_views([q], budget=1)
        engine.reset_stats()
        engine.query(q, fetch_measures=False)
        cost_after = engine.stats.structural_columns_fetched()
        assert cost_before == 3 and cost_after == 1

    def test_aggregate_views_preserve_answers(self, engine):
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "sum")
        before = engine.aggregate(q)
        engine.materialize_aggregate_views([q], budget=3)
        after = engine.aggregate(q)
        assert before.record_ids == after.record_ids
        for path, values in before.path_values.items():
            assert np.allclose(values, after.path_values[path])

    def test_aggregate_views_reduce_measure_fetches(self, engine):
        q = PathAggregationQuery(
            GraphQuery.from_node_chain("A", "B", "C", "D"), "sum"
        )
        engine.reset_stats()
        engine.aggregate(q)
        before = engine.stats.measure_fetch_columns()
        engine.materialize_aggregate_views([q], budget=2)
        engine.reset_stats()
        engine.aggregate(q)
        after = engine.stats.measure_fetch_columns()
        assert after < before

    def test_avg_query_uses_sum_view(self, engine):
        sum_q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "sum")
        engine.materialize_aggregate_views([sum_q], budget=2, function="sum")
        avg_q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "avg")
        plan = engine.plan_aggregation(avg_q)
        assert plan.structural_agg_view_names  # the sum view is used
        values = engine.aggregate(avg_q).path_values[Path.closed("A", "B", "C")]
        assert values.tolist() == [1.5, 4.5]

    def test_add_graph_view_manual(self, engine):
        name = engine.add_graph_view([("A", "B"), ("B", "C")], name="manual")
        assert name == "manual"
        assert "manual" in engine.graph_views
        plan = engine.plan_query(GraphQuery.from_node_chain("A", "B", "C"))
        assert plan.view_names == ["manual"]

    def test_view_over_unknown_edge_is_empty(self, engine):
        name = engine.add_graph_view([("A", "B"), ("NO", "PE")])
        assert engine.relation.view_bitmap(name).count() == 0

    def test_drop_all_views(self, engine):
        engine.add_graph_view([("A", "B"), ("B", "C")])
        engine.drop_all_views()
        assert engine.graph_views == {}
        plan = engine.plan_query(GraphQuery.from_node_chain("A", "B", "C"))
        assert plan.view_names == []

    def test_materialization_report_counts(self, engine):
        queries = [
            GraphQuery.from_node_chain("A", "B", "C"),
            GraphQuery.from_node_chain("B", "C", "D"),
        ]
        report = engine.materialize_graph_views(queries, budget=10)
        assert report.kind == "graph"
        assert report.n_candidates >= 2

    def test_materialize_methods_agree(self):
        queries = [
            GraphQuery.from_node_chain("A", "B", "C"),
            GraphQuery.from_node_chain("B", "C", "D"),
            GraphQuery.from_node_chain("A", "B", "C", "D"),
        ]
        selections = {}
        for method in ("closure", "apriori", "closed"):
            e = GraphAnalyticsEngine()
            e.load_records(
                [chain_record("r", ["A", "B", "C", "D"], [1.0, 2.0, 3.0])]
            )
            report = e.materialize_graph_views(
                queries, budget=5, method=method, min_support=1
            )
            selections[method] = {
                frozenset(v.elements) for v in e.graph_views.values()
            }
        assert selections["closure"] == selections["closed"]

    def test_unknown_method_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.materialize_graph_views([], budget=1, method="magic")


class TestStats:
    def test_reset(self, engine):
        engine.query(GraphQuery([("A", "B")]))
        engine.reset_stats()
        assert engine.stats.total_columns_fetched() == 0

    def test_disk_size(self, engine):
        assert engine.disk_size_bytes() > 0


class TestExplain:
    def test_explain_graph_query(self, engine):
        q = GraphQuery.from_node_chain("A", "B", "C")
        text = engine.explain(q)
        assert "GraphQuery" in text
        assert "SELECT recid" in text
        assert "structural columns: 2" in text

    def test_explain_shows_views(self, engine):
        q = GraphQuery.from_node_chain("A", "B", "C")
        engine.materialize_graph_views([q], budget=1)
        text = engine.explain(q)
        assert "gv1" in text
        assert "saves 1" in text

    def test_explain_aggregation(self, engine):
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "sum")
        text = engine.explain(q)
        assert "PathAggregationQuery function=sum" in text
        assert "maximal paths: 1" in text

    def test_explain_rejects_other_types(self, engine):
        with pytest.raises(TypeError):
            engine.explain("A->B")

"""Golden-plan snapshot tests for EXPLAIN.

Each scenario renders a plan for the paper's Figure 2 corpus (the bundled
``examples/figure2.jsonl`` dataset) and compares it byte-for-byte against
a checked-in snapshot under ``tests/goldens/``.  Plans are deterministic
by construction — sorted element/view orders, no timings — so any diff is
a real planner or renderer change.  Regenerate intentionally with::

    pytest tests/test_explain.py --update-goldens
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import GraphAnalyticsEngine
from repro.dsl import parse_aggregation, parse_query
from repro.io import read_jsonl
from repro.obs import explain, explain_dict

GOLDEN_DIR = Path(__file__).parent / "goldens"
EXAMPLES = Path(__file__).parent.parent / "examples"


def check_golden(name: str, actual: str, update: bool) -> None:
    path = GOLDEN_DIR / name
    if update:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(actual + "\n")
        pytest.skip(f"golden {name} updated")
    assert path.exists(), (
        f"missing golden {path}; run pytest --update-goldens to create it"
    )
    assert actual + "\n" == path.read_text(), (
        f"plan for {name} changed; rerun with --update-goldens if intended"
    )


@pytest.fixture
def fig2_engine() -> GraphAnalyticsEngine:
    engine = GraphAnalyticsEngine()
    engine.load_records(read_jsonl(EXAMPLES / "figure2.jsonl"))
    engine.materialize_graph_views(
        [parse_query("A -> D -> E"), parse_query("A -> D -> E -> F")],
        budget=2,
    )
    engine.materialize_aggregate_views(
        [parse_aggregation("SUM E -> F -> G")], budget=2
    )
    return engine


class TestGraphQueryGoldens:
    def test_view_rewrite_text(self, fig2_engine, update_goldens):
        text = explain(fig2_engine, parse_query("A -> D -> E"))
        check_golden("explain_graph_view.txt", text, update_goldens)

    def test_view_plus_residual_text(self, fig2_engine, update_goldens):
        text = explain(fig2_engine, parse_query("A -> D -> E -> F -> G"))
        check_golden("explain_graph_residual.txt", text, update_goldens)

    def test_no_views_text(self, update_goldens):
        engine = GraphAnalyticsEngine()
        engine.load_records(read_jsonl(EXAMPLES / "figure2.jsonl"))
        text = explain(engine, parse_query("A -> D -> E"))
        check_golden("explain_graph_base.txt", text, update_goldens)

    def test_unindexed_element_text(self, fig2_engine, update_goldens):
        text = explain(fig2_engine, parse_query("X -> Y"))
        check_golden("explain_graph_unindexed.txt", text, update_goldens)

    def test_json(self, fig2_engine, update_goldens):
        out = explain(fig2_engine, parse_query("A -> D -> E"), fmt="json")
        check_golden("explain_graph_view.json", out, update_goldens)


class TestAggregationGoldens:
    def test_aggregate_view_text(self, fig2_engine, update_goldens):
        text = explain(fig2_engine, parse_aggregation("SUM E -> F -> G"))
        check_golden("explain_agg_view.txt", text, update_goldens)

    def test_raw_tiling_text(self, fig2_engine, update_goldens):
        text = explain(fig2_engine, parse_aggregation("AVG A -> D -> E"))
        check_golden("explain_agg_raw.txt", text, update_goldens)

    def test_json(self, fig2_engine, update_goldens):
        out = explain(fig2_engine, parse_aggregation("SUM E -> F -> G"), fmt="json")
        check_golden("explain_agg_view.json", out, update_goldens)


class TestAnalyzeGolden:
    def test_analyze_text_is_deterministic(self, fig2_engine, update_goldens):
        # EXPLAIN ANALYZE text shows counters but no timings, so it is as
        # goldenable as the plain plan.
        text = explain(fig2_engine, parse_query("A -> D -> E"), analyze=True)
        check_golden("explain_graph_analyze.txt", text, update_goldens)


class TestExplainContract:
    def test_two_renders_identical(self, fig2_engine):
        query = parse_query("A -> D -> E -> F -> G")
        assert explain(fig2_engine, query) == explain(fig2_engine, query)
        assert explain(fig2_engine, query, fmt="json") == explain(
            fig2_engine, query, fmt="json"
        )

    def test_explain_moves_no_io_counters(self, fig2_engine):
        fig2_engine.reset_stats()
        explain(fig2_engine, parse_query("A -> D -> E -> F -> G"))
        explain(fig2_engine, parse_aggregation("SUM E -> F -> G"))
        assert fig2_engine.stats.total_columns_fetched() == 0

    def test_analyze_attaches_execution(self, fig2_engine):
        plan = explain_dict(
            fig2_engine, parse_query("A -> D -> E"), analyze=True
        )
        execution = plan["execution"]
        assert execution["result_records"] == 3
        assert execution["counters"]["rows_matched"] == 3
        assert execution["trace"]["root"]["name"] == "query"

    def test_unknown_format_rejected(self, fig2_engine):
        with pytest.raises(ValueError):
            explain(fig2_engine, parse_query("A -> D -> E"), fmt="yaml")

    def test_non_query_rejected(self, fig2_engine):
        with pytest.raises(TypeError):
            explain(fig2_engine, "not a query")

    def test_engine_explain_delegates(self, fig2_engine):
        query = parse_query("A -> D -> E")
        assert fig2_engine.explain(query) == explain(fig2_engine, query)

    def test_json_golden_is_valid_json(self, fig2_engine):
        payload = json.loads(
            explain(fig2_engine, parse_query("A -> D -> E"), fmt="json")
        )
        assert payload["type"] == "graph-query"


class TestPhysicalPlanIsSourceOfTruth:
    """EXPLAIN must render the *same* PhysicalPlan object the operator
    layer executes — not an independently re-derived plan."""

    def test_executed_plan_is_explained_plan(self, fig2_engine):
        query = parse_query("A -> D -> E")
        physical = fig2_engine.physical_plan(query)
        # The executed query carries the identical logical plan object,
        # and explain_dict is exactly the physical plan's own IR.
        assert fig2_engine.query(query).plan is physical.logical
        assert explain_dict(fig2_engine, query) == physical.to_dict()

    def test_aggregation_plan_identity(self, fig2_engine):
        query = parse_aggregation("SUM E -> F -> G")
        physical = fig2_engine.physical_plan(query)
        assert fig2_engine.aggregate(query).plan is physical.logical
        assert explain_dict(fig2_engine, query) == physical.to_dict()

    def test_memo_invalidated_on_mutation(self, fig2_engine):
        from repro.core import GraphRecord

        query = parse_query("A -> D -> E")
        before = fig2_engine.physical_plan(query)
        fig2_engine.append_records(
            [GraphRecord("extra", {("A", "D"): 1.0, ("D", "E"): 2.0})]
        )
        after = fig2_engine.physical_plan(query)
        assert after is not before
        assert after.epoch > before.epoch

    def test_analyze_does_not_pollute_memo(self, fig2_engine):
        query = parse_query("A -> D -> E")
        explain_dict(fig2_engine, query, analyze=True)
        # The analyze annotation edits a deep copy, never the memoized IR.
        assert "execution" not in fig2_engine.physical_plan(query).to_dict()

    def test_plan_reports_shard_count(self):
        engine = GraphAnalyticsEngine(shards=3)
        engine.load_records(read_jsonl(EXAMPLES / "figure2.jsonl"))
        plan = explain_dict(engine, parse_query("A -> D -> E"))
        assert plan["shards"] == 3
        assert "shards: 3 (record-range parallel)" in explain(
            engine, parse_query("A -> D -> E")
        )

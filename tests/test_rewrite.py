"""Tests for query rewriting and path tiling over materialized views."""

from __future__ import annotations

from repro.core import (
    AggregateGraphView,
    GraphQuery,
    GraphView,
    Path,
    PathAggregationQuery,
    plan_aggregation,
    plan_graph_query,
    tile_path,
)
from repro.core.rewrite import segment_elements


class TestPlanGraphQuery:
    def test_no_views_all_residual(self):
        q = GraphQuery.from_node_chain("A", "B", "C")
        plan = plan_graph_query(q, {})
        assert plan.view_names == []
        assert set(plan.residual_elements) == q.elements
        assert plan.n_structural_columns() == 2

    def test_full_view_single_column(self):
        q = GraphQuery.from_node_chain("A", "B", "C")
        views = {"v": GraphView("v", q.elements)}
        plan = plan_graph_query(q, views)
        assert plan.view_names == ["v"]
        assert plan.residual_elements == []
        assert plan.n_structural_columns() == 1

    def test_partial_view_plus_residue(self):
        q = GraphQuery.from_node_chain("A", "B", "C", "D")
        views = {"v": GraphView("v", [("A", "B"), ("B", "C")])}
        plan = plan_graph_query(q, views)
        assert plan.view_names == ["v"]
        assert set(plan.residual_elements) == {("C", "D")}

    def test_view_reduces_columns_by_size_minus_one(self):
        q = GraphQuery.from_node_chain(*"ABCDEFG")  # 6 edges
        views = {"v": GraphView("v", list(q.elements)[:0] or [("A", "B"), ("B", "C"), ("C", "D")])}
        plan = plan_graph_query(q, views)
        assert plan.n_structural_columns() == 6 - (3 - 1)

    def test_irrelevant_view_ignored(self):
        q = GraphQuery.from_node_chain("A", "B", "C")
        views = {"v": GraphView("v", [("X", "Y"), ("Y", "Z")])}
        plan = plan_graph_query(q, views)
        assert plan.view_names == []


class TestSegmentElements:
    def test_interior_interval_closed(self):
        path = Path.closed("A", "B", "C", "D")
        elems = segment_elements(path, 1, 2, measured_nodes={"B", "C"})
        assert elems == {("B", "B"), ("B", "C"), ("C", "C")}

    def test_endpoint_inherits_openness(self):
        path = Path.half_open_right("A", "B", "C")
        elems = segment_elements(path, 1, 2, measured_nodes={"B", "C"})
        # C is the path's open end: excluded.
        assert elems == {("B", "B"), ("B", "C")}


class TestTilePath:
    def test_no_views_all_raw(self):
        path = Path.closed("A", "B", "C")
        plan = tile_path(path, {})
        assert [s.kind for s in plan.segments] == ["raw", "raw"]

    def test_whole_path_view(self):
        path = Path.closed("A", "B", "C")
        views = {"av": AggregateGraphView("av", path, "sum")}
        plan = tile_path(path, views)
        assert [s.kind for s in plan.segments] == ["view"]
        assert plan.view_names() == ["av"]

    def test_prefix_view_and_raw_tail(self):
        path = Path.closed("A", "B", "C", "D")
        views = {"av": AggregateGraphView("av", Path.closed("A", "B", "C"), "sum")}
        plan = tile_path(path, views)
        assert plan.view_names() == ["av"]
        assert plan.raw_elements() == [("C", "D")]

    def test_longest_view_wins(self):
        path = Path.closed("A", "B", "C", "D")
        views = {
            "short": AggregateGraphView("short", Path.closed("A", "B", "C"), "sum"),
            "long": AggregateGraphView("long", Path.closed("A", "B", "C", "D"), "sum"),
        }
        plan = tile_path(path, views)
        assert plan.view_names() == ["long"]

    def test_non_overlapping_tiles(self):
        path = Path.closed("A", "B", "C", "D", "E")
        views = {
            "left": AggregateGraphView("left", Path.closed("A", "B", "C"), "sum"),
            "right": AggregateGraphView("right", Path.closed("C", "D", "E"), "sum"),
        }
        plan = tile_path(path, views)
        # Tiles overlap at node C's edges? left covers edges AB,BC; right
        # covers CD,DE — disjoint edge sets, both place.
        assert set(plan.view_names()) == {"left", "right"}
        assert plan.raw_elements() == []

    def test_overlapping_views_only_one_placed(self):
        path = Path.closed("A", "B", "C", "D")
        views = {
            "one": AggregateGraphView("one", Path.closed("A", "B", "C"), "sum"),
            "two": AggregateGraphView("two", Path.closed("B", "C", "D"), "sum"),
        }
        plan = tile_path(path, views)
        assert len(plan.view_names()) == 1

    def test_function_mismatch_not_tiled(self):
        path = Path.closed("A", "B", "C")
        views = {"av": AggregateGraphView("av", path, "max")}
        plan = tile_path(path, views, function="sum")
        assert plan.view_names() == []

    def test_sum_view_usable_for_avg(self):
        path = Path.closed("A", "B", "C")
        views = {"av": AggregateGraphView("av", path, "sum")}
        plan = tile_path(path, views, function="avg")
        assert plan.view_names() == ["av"]

    def test_avg_view_usable_for_sum(self):
        path = Path.closed("A", "B", "C")
        views = {"av": AggregateGraphView("av", path, "avg")}
        plan = tile_path(path, views, function="sum")
        assert plan.view_names() == ["av"]

    def test_measured_node_mismatch_blocks_tile(self):
        # View stores the pure-edge aggregate; query path includes node B's
        # own measure — the tile would under-count, so it must not place.
        path = Path.closed("A", "B", "C")
        views = {"av": AggregateGraphView("av", Path.closed("A", "B"), "sum")}
        plan = tile_path(path, views, measured_nodes={"B"})
        # view [A,B] covers elements {(A,B),(B,B)} when B measured; over
        # the query interval [A..B] expected is {(A,B),(B,B)} too — so it
        # CAN place. Sanity: result must cover all elements exactly once.
        covered = set()
        for segment in plan.segments:
            if segment.kind == "view":
                covered |= set(views[segment.view_name].elements({"B"}))
            else:
                covered.add(segment.element)
        assert covered == set(path.elements({"B"}))


class TestPlanAggregation:
    def test_no_views(self):
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "sum")
        plan = plan_aggregation(q, {}, {})
        assert plan.structural_agg_view_names == []
        assert set(plan.residual_elements) == q.query.elements
        assert plan.n_measure_columns() == 2

    def test_aggregate_view_covers_structure_too(self):
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "sum")
        views = {"av": AggregateGraphView("av", Path.closed("A", "B", "C"), "sum")}
        plan = plan_aggregation(q, views, {})
        assert plan.structural_agg_view_names == ["av"]
        assert plan.residual_elements == []
        assert plan.n_structural_columns() == 1
        assert plan.n_measure_columns() == 1

    def test_graph_view_covers_residue(self):
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C", "D"), "sum")
        agg_views = {"av": AggregateGraphView("av", Path.closed("A", "B", "C"), "sum")}
        graph_views = {"gv": GraphView("gv", [("C", "D"), ("A", "B")])}
        plan = plan_aggregation(q, agg_views, graph_views)
        assert plan.structural_agg_view_names == ["av"]
        # gv covers only (C,D) marginally — gain 1, not better than b_i.
        assert plan.structural_view_names == []
        assert plan.residual_elements == [("C", "D")]

    def test_diamond_query_two_paths(self):
        q = PathAggregationQuery(
            GraphQuery([("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")]), "sum"
        )
        plan = plan_aggregation(q, {}, {})
        assert len(plan.path_plans) == 2

    def test_view_cost_reduction_matches_model(self):
        # 6-edge chain with a 3-edge aggregate view: structural columns
        # drop from 6 to 4 (view bp + 3 residual bitmaps), measures from 6
        # columns to 4 (view mp + 3 raw).
        q = PathAggregationQuery(GraphQuery.from_node_chain(*"ABCDEFG"), "sum")
        views = {"av": AggregateGraphView("av", Path.closed("A", "B", "C", "D"), "sum")}
        plan = plan_aggregation(q, views, {})
        assert plan.n_structural_columns() == 4
        assert plan.n_measure_columns() == 4

"""Tests for fragment mining, discriminative selection, and integration."""

from __future__ import annotations

import pytest

from repro.core import GraphAnalyticsEngine, GraphQuery, GraphRecord
from repro.gindex import (
    Fragment,
    index_fragments,
    mine_and_index,
    mine_frequent_fragments,
    select_discriminative_fragments,
)

AB, BC, CD, XY = ("A", "B"), ("B", "C"), ("C", "D"), ("X", "Y")

RECORDS = [
    GraphRecord("r1", {AB: 1.0, BC: 1.0, CD: 1.0}),
    GraphRecord("r2", {AB: 1.0, BC: 1.0}),
    GraphRecord("r3", {AB: 1.0, BC: 1.0, CD: 1.0}),
    GraphRecord("r4", {XY: 1.0}),
]


class TestMining:
    def test_single_edges_mined(self):
        fragments = mine_frequent_fragments(RECORDS, min_support=2)
        singles = {f.elements for f in fragments if len(f) == 1}
        assert frozenset([AB]) in singles
        assert frozenset([XY]) not in singles  # support 1 < 2

    def test_supports_correct(self):
        fragments = mine_frequent_fragments(RECORDS, min_support=1)
        by_elements = {f.elements: f.support for f in fragments}
        assert by_elements[frozenset([AB])] == 3
        assert by_elements[frozenset([AB, BC])] == 3
        assert by_elements[frozenset([AB, BC, CD])] == 2

    def test_connectivity_enforced(self):
        records = [GraphRecord("r", {AB: 1.0, XY: 1.0})] * 3
        fragments = mine_frequent_fragments(records, min_support=2, max_size=2)
        assert frozenset([AB, XY]) not in {f.elements for f in fragments}

    def test_max_size_respected(self):
        fragments = mine_frequent_fragments(RECORDS, min_support=1, max_size=2)
        assert max(len(f) for f in fragments) <= 2

    def test_accepts_plain_element_sets(self):
        sets = [frozenset([AB, BC]), frozenset([AB])]
        fragments = mine_frequent_fragments(sets, min_support=1)
        assert frozenset([AB, BC]) in {f.elements for f in fragments}

    def test_min_support_validation(self):
        with pytest.raises(ValueError):
            mine_frequent_fragments(RECORDS, min_support=0)

    def test_fragment_cap(self):
        fragments = mine_frequent_fragments(RECORDS, min_support=1, max_fragments=3)
        assert len(fragments) <= 4  # cap is approximate per level


class TestDiscriminativeSelection:
    def test_redundant_fragment_filtered(self):
        # {AB, BC} has the same support set as AB ∩ BC: not discriminative.
        elements = [r.elements() for r in RECORDS]
        fragments = mine_frequent_fragments(RECORDS, min_support=1)
        selected = select_discriminative_fragments(
            fragments, elements, gamma_min=1.5
        )
        assert frozenset([AB, BC]) not in {f.elements for f in selected}

    def test_discriminative_fragment_kept(self):
        # AB and BC co-occur widely but only some records have both with CD:
        records = [
            GraphRecord("a", {AB: 1.0, BC: 1.0}),
            GraphRecord("b", {AB: 1.0, CD: 1.0}),
            GraphRecord("c", {BC: 1.0, CD: 1.0}),
            GraphRecord("d", {AB: 1.0, BC: 1.0, CD: 1.0}),
        ]
        elements = [r.elements() for r in records]
        fragments = mine_frequent_fragments(records, min_support=1)
        selected = select_discriminative_fragments(fragments, elements, gamma_min=1.5)
        # {AB,BC} contains 2 records while AB∩BC projects 2... compute:
        # D_AB={a,b,d}, D_BC={a,c,d} -> projected {a,d}, own {a,d}: ratio 1.
        # {AB,CD}: D_CD={b,c,d} -> projected {b,d}, own {b,d}: ratio 1.
        # {AB,BC,CD}: projected (from indexed singles) {d}, own {d}.
        # With gamma 1.5 nothing qualifies — all supports coincide.
        assert all(f.elements != frozenset([AB, BC]) for f in selected)

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            select_discriminative_fragments([], [], gamma_min=0.5)

    def test_max_selected_cap(self):
        records = [
            GraphRecord(f"r{i}", {AB: 1.0, BC: 1.0, CD: 1.0})
            for i in range(4)
        ] + [
            GraphRecord("s1", {AB: 1.0}),
            GraphRecord("s2", {BC: 1.0}),
            GraphRecord("s3", {CD: 1.0}),
        ]
        elements = [r.elements() for r in records]
        fragments = mine_frequent_fragments(records, min_support=2)
        selected = select_discriminative_fragments(
            fragments, elements, gamma_min=1.2, max_selected=1
        )
        assert len(selected) <= 1


class TestIntegration:
    def _engine(self):
        engine = GraphAnalyticsEngine()
        engine.load_records(RECORDS)
        return engine

    def test_index_fragments_registers_views(self):
        engine = self._engine()
        names = index_fragments(
            engine, [Fragment(frozenset([AB, BC]), 3)], prefix="f"
        )
        assert names == ["f0"]
        assert "f0" in engine.graph_views

    def test_single_edge_fragments_skipped(self):
        engine = self._engine()
        names = index_fragments(engine, [Fragment(frozenset([AB]), 3)])
        assert names == []

    def test_fragment_used_in_plans(self):
        engine = self._engine()
        index_fragments(engine, [Fragment(frozenset([AB, BC]), 3)], prefix="f")
        plan = engine.plan_query(GraphQuery([AB, BC, CD]))
        assert plan.view_names == ["f0"]

    def test_fragment_answers_match_plain(self):
        plain = self._engine()
        indexed = self._engine()
        index_fragments(indexed, [Fragment(frozenset([AB, BC]), 3)])
        for q in [GraphQuery([AB, BC]), GraphQuery([AB, BC, CD])]:
            assert plain.query(q).record_ids == indexed.query(q).record_ids

    def test_mine_and_index_pipeline(self):
        engine = self._engine()
        sample = [r.elements() for r in RECORDS]
        names = mine_and_index(
            engine, sample, min_support=1, max_fragments=5, gamma_min=1.0
        )
        # gamma 1.0 admits every frequent multi-edge fragment (ratio >= 1).
        assert names
        q = GraphQuery([AB, BC, CD])
        assert engine.query(q).record_ids == ["r1", "r3"]

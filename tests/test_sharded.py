"""Shard-parallel storage layer: geometry, routing, persistence, serving.

The :class:`ShardedTable` backend horizontally partitions the master
relation into contiguous record-range shards behind the same
``StorageBackend`` contract as :class:`MasterRelation`.  These tests pin
the invariants the operator layer relies on: balanced even splits,
order-preserving routing and gathers, bit-identical rebalance /
from-relation / to-relation round trips, crash-safe per-shard
persistence with root-generation commit semantics, and the engine- and
executor-level sharding seams (``shards=N``, ``reshard``, parallel
ingest, the shard mapper)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.columnstore import (
    Bitmap,
    MasterRelation,
    MeasureColumn,
    ShardedTable,
    StorageBackend,
    is_sharded_dir,
    load_sharded,
    save_sharded,
)
from repro.core import GraphAnalyticsEngine, GraphQuery, PathAggregationQuery
from repro.errors import CorruptionError, ManifestError, PersistenceError
from repro.exec import BitmapCache, QueryExecutor
from repro.workloads import build_dataset, sample_path_queries
from tests import faultinject as fi

# -- fixtures ----------------------------------------------------------------


def _reference_relation(n_records: int = 10) -> MasterRelation:
    """An unsharded relation with columns spanning shard boundaries."""
    rel = MasterRelation(partition_width=2)
    rel.set_record_count(n_records)
    rel.load_sparse_column(
        0, np.arange(0, n_records, 2), np.arange(0, n_records, 2) + 1.0
    )
    rel.load_sparse_column(
        1, np.arange(1, n_records, 3), np.full(len(range(1, n_records, 3)), 7.0)
    )
    rel.load_sparse_column(2, np.array([0, n_records - 1]), np.array([3.0, 4.0]))
    rel.add_graph_view("gv1", Bitmap.from_indices(n_records, [0, n_records - 1]))
    rel.add_aggregate_view(
        "av1:sum",
        MeasureColumn.from_optionals([5.0] + [None] * (n_records - 2) + [6.0]),
    )
    return rel


def _sharded_table(n_shards: int = 3, n_records: int = 10) -> ShardedTable:
    return ShardedTable.from_relation(_reference_relation(n_records), n_shards)


@pytest.fixture(scope="module")
def records():
    return list(build_dataset("NY", n_records=60, seed=7).to_records())


@pytest.fixture(scope="module")
def queries(records):
    corpus = build_dataset("NY", n_records=60, seed=7)
    return sample_path_queries(corpus, 12, 3, distribution="zipf", seed=4)


def _assert_tables_equal(a, b) -> None:
    assert a.n_records == b.n_records
    assert a.element_ids() == b.element_ids()
    for edge_id in a.element_ids():
        assert a.bitmap(edge_id) == b.bitmap(edge_id)
        np.testing.assert_array_equal(
            a.measures(edge_id), b.measures(edge_id)
        )
    assert a.graph_view_names() == b.graph_view_names()
    for name in a.graph_view_names():
        assert a.view_bitmap(name) == b.view_bitmap(name)
    assert a.aggregate_view_names() == b.aggregate_view_names()
    for name in a.aggregate_view_names():
        assert a.aggregate_view_bitmap(name) == b.aggregate_view_bitmap(name)


# -- geometry ----------------------------------------------------------------


class TestGeometry:
    def test_backend_protocol(self):
        assert isinstance(ShardedTable(2), StorageBackend)
        assert isinstance(MasterRelation(), StorageBackend)

    def test_unsharded_relation_is_one_shard(self):
        rel = MasterRelation()
        assert rel.shard_relations() == [rel]
        assert rel.shard_starts() == [0]

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardedTable(0)

    def test_even_split(self):
        table = ShardedTable(4)
        table.set_record_count(10)
        assert [s.n_records for s in table.shards] == [3, 3, 2, 2]
        assert table.shard_starts() == [0, 3, 6, 8]
        assert table.n_records == 10

    def test_growth_extends_last_shard_only(self):
        table = ShardedTable(3)
        table.set_record_count(6)
        table.set_record_count(9)
        assert [s.n_records for s in table.shards] == [2, 2, 5]

    def test_shrink_rejected(self):
        table = ShardedTable(2)
        table.set_record_count(4)
        with pytest.raises(ValueError):
            table.set_record_count(3)

    def test_append_row_returns_global_index(self):
        table = ShardedTable(3)
        table.set_record_count(6)
        assert table.append_row({0: 1.0}) == 6
        assert table.append_row({1: 2.0}) == 7
        assert [s.n_records for s in table.shards] == [2, 2, 4]


# -- routing -----------------------------------------------------------------


class TestRouting:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 10])
    def test_columns_match_reference(self, n_shards):
        _assert_tables_equal(_sharded_table(n_shards), _reference_relation())

    def test_bitmap_zero_fills_absent_shards(self):
        # Edge 2 only has rows in the first and last shard; the middle
        # shard contributes an all-zero segment, not an error.
        table = _sharded_table(3)
        assert table.bitmap(2).to_indices().tolist() == [0, 9]
        assert not table.shards[1].has_element(2)

    def test_measure_gather_preserves_row_order(self):
        table = _sharded_table(3)
        rows = np.array([9, 0, 4, 2])
        np.testing.assert_array_equal(
            table.measures(0, rows), _reference_relation().measures(0, rows)
        )

    def test_load_sparse_column_validates(self):
        table = ShardedTable(2)
        table.set_record_count(4)
        with pytest.raises(IndexError):
            table.load_sparse_column(0, np.array([4]), np.array([1.0]))
        with pytest.raises(ValueError):
            table.load_sparse_column(0, np.array([0, 1]), np.array([1.0]))

    def test_shared_collector_counts_per_shard_fetches(self):
        table = _sharded_table(3)
        before = table.collector.stats.bitmap_columns_fetched
        table.bitmap(0)
        # Edge 0 is present in all three shards: three physical fetches.
        assert table.collector.stats.bitmap_columns_fetched == before + 3


# -- rebalance and conversion ------------------------------------------------


class TestRebalanceAndConversion:
    def test_round_trip_to_relation(self):
        _assert_tables_equal(_sharded_table(4).to_relation(), _reference_relation())

    def test_rebalance_after_appends(self):
        table = _sharded_table(4)
        for i in range(6):
            table.append_row({0: 100.0 + i})
        # Incremental view maintenance, as the engine does on append.
        table.extend_graph_view("gv1", [False] * 6)
        table.extend_aggregate_view("av1:sum", [None] * 6)
        skewed = [s.n_records for s in table.shards]
        reference = table.to_relation()
        table.rebalance()
        assert [s.n_records for s in table.shards] == [4, 4, 4, 4] != skewed
        _assert_tables_equal(table, reference)

    def test_reshard_preserves_content(self):
        table = _sharded_table(2)
        again = ShardedTable.from_relation(table, 5)
        assert again.n_shards == 5
        _assert_tables_equal(again, table)


# -- views -------------------------------------------------------------------


class TestShardedViews:
    def test_view_split_and_merge(self):
        table = _sharded_table(3)
        assert table.view_bitmap("gv1").to_indices().tolist() == [0, 9]
        assert all(s.has_graph_view("gv1") for s in table.shards)

    def test_view_usable_only_when_in_every_shard(self):
        table = _sharded_table(3)
        table.shards[1].drop_graph_view("gv1")
        assert not table.has_graph_view("gv1")
        assert "gv1" not in table.graph_view_names()

    def test_extend_views_on_append(self):
        table = _sharded_table(3)
        table.append_row({0: 9.0})
        table.extend_graph_view("gv1", [True])
        table.extend_aggregate_view("av1:sum", [8.0])
        assert table.view_bitmap("gv1").to_indices().tolist() == [0, 9, 10]
        assert table.aggregate_view_bitmap("av1:sum")[10]

    def test_drop_views_clears_all_shards(self):
        table = _sharded_table(3)
        table.drop_views()
        assert table.graph_view_names() == []
        assert table.aggregate_view_names() == []


# -- persistence -------------------------------------------------------------


def _shard_dir(db, index: int):
    manifest = json.loads((db / "shards.json").read_text())
    return db / manifest["directory"] / f"shard-{index:03d}"


class TestShardedPersistence:
    def test_round_trip(self, tmp_path):
        table = _sharded_table(3)
        db = tmp_path / "db"
        save_sharded(table, db, app_meta={"k": 1})
        assert is_sharded_dir(db) and not is_sharded_dir(tmp_path)
        loaded = load_sharded(db)
        assert loaded.n_shards == 3
        assert loaded.app_meta == {"k": 1}
        _assert_tables_equal(loaded, table)

    def test_crash_mid_save_preserves_previous_generation(self, tmp_path):
        table = _sharded_table(3)
        db = tmp_path / "db"
        save_sharded(table, db)
        table.append_row({0: 9.0})
        # Sweep the crash through every per-shard save stage: whichever
        # instant the process dies, the committed generation survives.
        for stage in range(3):
            with pytest.raises(fi.SimulatedCrash):
                with fi.crash_at_stage(stage):
                    save_sharded(table, db)
            assert load_sharded(db).n_records == 10
        # The next clean save commits the new state and collects debris.
        save_sharded(table, db)
        assert load_sharded(db).n_records == 11
        children = sorted(p.name for p in db.iterdir())
        assert children == [json.loads((db / "shards.json").read_text())["directory"], "shards.json"]

    def test_generation_gc(self, tmp_path):
        table = _sharded_table(2)
        db = tmp_path / "db"
        save_sharded(table, db)
        save_sharded(table, db)
        save_sharded(table, db)
        assert sorted(p.name for p in db.iterdir()) == ["gen-000003", "shards.json"]

    def test_manifest_garbage(self, tmp_path):
        db = tmp_path / "db"
        save_sharded(_sharded_table(2), db)
        (db / "shards.json").write_text("{nope")
        with pytest.raises(ManifestError, match="invalid JSON"):
            load_sharded(db)

    def test_manifest_missing_fields(self, tmp_path):
        db = tmp_path / "db"
        save_sharded(_sharded_table(2), db)
        (db / "shards.json").write_text(json.dumps({"format_version": 1}))
        with pytest.raises(ManifestError, match="missing fields"):
            load_sharded(db)

    def test_unsupported_format_version(self, tmp_path):
        db = tmp_path / "db"
        save_sharded(_sharded_table(2), db)
        manifest = json.loads((db / "shards.json").read_text())
        manifest["format_version"] = 99
        (db / "shards.json").write_text(json.dumps(manifest))
        with pytest.raises(ManifestError, match="format_version"):
            load_sharded(db)

    def test_shard_count_mismatch(self, tmp_path):
        db = tmp_path / "db"
        save_sharded(_sharded_table(2), db)
        manifest = json.loads((db / "shards.json").read_text())
        manifest["shard_records"] = [1, 9]
        (db / "shards.json").write_text(json.dumps(manifest))
        with pytest.raises(ManifestError, match="expects"):
            load_sharded(db)

    def test_not_a_sharded_dir(self, tmp_path):
        with pytest.raises(PersistenceError, match="shards.json"):
            load_sharded(tmp_path)

    def test_corrupt_shard_column_detected(self, tmp_path):
        db = tmp_path / "db"
        save_sharded(_sharded_table(3), db)
        fi.flip_bit(fi.data_file(_shard_dir(db, 1), "m0_vals.npy"))
        with pytest.raises(CorruptionError, match="CRC32"):
            load_sharded(db)

    def test_damaged_view_in_one_shard_drops_view_globally(self, tmp_path):
        db = tmp_path / "db"
        save_sharded(_sharded_table(3), db)
        fi.data_file(_shard_dir(db, 2), "gv_gv1.npy").unlink()
        with pytest.warns(RuntimeWarning, match="gv1"):
            loaded = load_sharded(db)
        # The view is gone from the table (one missing segment makes the
        # global view unanswerable) but base columns still verify.
        assert not loaded.has_graph_view("gv1")
        assert "gv1" in [name for name, _ in loaded.dropped_views]
        assert loaded.bitmap(0) == _reference_relation().bitmap(0)


# -- engine-level sharding ---------------------------------------------------


class TestEngineSharding:
    def test_sharded_engine_matches_unsharded(self, records, queries):
        plain = GraphAnalyticsEngine()
        plain.load_records(records)
        sharded = GraphAnalyticsEngine(shards=4)
        sharded.load_records(records)
        assert sharded.n_shards == 4
        for query in queries:
            assert (
                sharded.query(query).record_ids
                == plain.query(query).record_ids
            )
            agg = PathAggregationQuery(query, "sum")
            assert sharded.aggregate(agg).path_values.keys() == (
                plain.aggregate(agg).path_values.keys()
            )

    def test_parallel_ingest_preserves_record_order(self, records, queries):
        serial = GraphAnalyticsEngine(shards=4)
        serial.load_records(records)
        parallel = GraphAnalyticsEngine(shards=4)
        assert parallel.load_records_parallel(records, jobs=4) == len(records)
        for query in queries:
            assert (
                parallel.query(query, fetch_measures=False).record_ids
                == serial.query(query, fetch_measures=False).record_ids
            )

    def test_reshard_bumps_epoch_and_keeps_answers(self, records, queries):
        engine = GraphAnalyticsEngine(shards=2)
        engine.load_records(records)
        before = [engine.query(q, fetch_measures=False).record_ids for q in queries]
        epoch = engine.epoch
        engine.reshard(5)
        assert engine.n_shards == 5
        assert engine.epoch > epoch
        after = [engine.query(q, fetch_measures=False).record_ids for q in queries]
        assert after == before
        engine.reshard(1)  # flatten back to a plain MasterRelation
        assert engine.n_shards == 1
        assert not isinstance(engine.relation, ShardedTable)

    def test_save_load_round_trip(self, tmp_path, records, queries):
        engine = GraphAnalyticsEngine(shards=3)
        engine.load_records(records)
        engine.materialize_graph_views(queries[:4], budget=2)
        db = tmp_path / "db"
        engine.save(db)
        assert is_sharded_dir(db)
        loaded = GraphAnalyticsEngine.load(db)
        assert loaded.n_shards == 3
        assert sorted(loaded.graph_views) == sorted(engine.graph_views)
        resharded = GraphAnalyticsEngine.load(db, shards=6)
        assert resharded.n_shards == 6
        for query in queries:
            expected = engine.query(query).record_ids
            assert loaded.query(query).record_ids == expected
            assert resharded.query(query).record_ids == expected

    def test_shard_mapper_seam(self, records, queries):
        engine = GraphAnalyticsEngine(shards=4)
        engine.load_records(records)
        expected = [engine.query(q, fetch_measures=False).record_ids for q in queries]
        fanouts = []

        def mapper(fn, tasks):
            fanouts.append(len(tasks))
            return [fn(task) for task in tasks]

        engine.use_shard_mapper(mapper)
        got = [engine.query(q, fetch_measures=False).record_ids for q in queries]
        assert got == expected
        assert fanouts and all(n == 4 for n in fanouts)
        engine.use_shard_mapper(None)

    def test_append_after_load_extends_last_shard(self, records):
        engine = GraphAnalyticsEngine(shards=3)
        engine.load_records(records[:30])
        sizes = [s.n_records for s in engine.relation.shard_relations()]
        engine.append_records(records[30:40])
        grown = [s.n_records for s in engine.relation.shard_relations()]
        assert grown[:2] == sizes[:2]
        assert grown[2] == sizes[2] + 10
        assert engine.n_records == 40


# -- cache keys and the executor's shard pool --------------------------------


class TestShardAwareServing:
    def test_cache_keys_isolate_shards(self):
        cache = BitmapCache(1 << 20)
        bitmaps = {0: Bitmap.from_indices(4, [0]), 1: Bitmap.from_indices(4, [1])}
        elements = frozenset([("A", "B")])
        for shard, expected in bitmaps.items():
            got = cache.get_or_compute(
                7, elements, lambda s=shard: bitmaps[s], shard=shard
            )
            assert got == expected
        # Both entries live side by side; neither lookup collides.
        assert cache.lookup(7, elements, shard=0) == bitmaps[0]
        assert cache.lookup(7, elements, shard=1) == bitmaps[1]

    def test_executor_installs_and_removes_shard_pool(self, records, queries):
        from repro.obs import MetricsRegistry

        plain = GraphAnalyticsEngine()
        plain.load_records(records)
        expected = [plain.query(q).record_ids for q in queries]
        engine = GraphAnalyticsEngine(shards=4)
        engine.load_records(records)
        registry = MetricsRegistry()
        with QueryExecutor(engine, jobs=4, cache_mb=8, registry=registry) as ex:
            results = ex.run_batch(list(queries))
            assert registry.get("engine.shards").value == 4
        assert [r.record_ids for r in results] == expected
        assert registry.get("exec.shard_tasks").value > 0
        # close() must uninstall the mapper so later serial use is safe.
        assert engine._shard_map is None

    def test_serial_executor_leaves_mapper_alone(self, records):
        engine = GraphAnalyticsEngine(shards=2)
        engine.load_records(records[:10])
        with QueryExecutor(engine, jobs=1) as ex:
            ex.run_one(GraphQuery([next(iter(records[0].elements()))]))
        assert engine._shard_map is None

"""Tests for graph queries and boolean combinators."""

from __future__ import annotations

import pytest

from repro.core import And, AndNot, GraphQuery, Or, Path, PathAggregationQuery
from repro.core.record import GraphRecord


class TestConstruction:
    def test_from_elements(self):
        q = GraphQuery([("A", "B"), ("B", "C")])
        assert len(q) == 2
        assert ("A", "B") in q

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GraphQuery([])

    def test_bad_element_rejected(self):
        with pytest.raises(TypeError):
            GraphQuery(["AB"])

    def test_from_node_chain(self):
        q = GraphQuery.from_node_chain("A", "D", "E", "G", "I")
        assert q.elements == {("A", "D"), ("D", "E"), ("E", "G"), ("G", "I")}

    def test_from_node_chain_too_short(self):
        with pytest.raises(ValueError):
            GraphQuery.from_node_chain("A")

    def test_from_path_with_measured_nodes(self):
        q = GraphQuery.from_path(Path.closed("A", "B"), measured_nodes={"A"})
        assert q.elements == {("A", "A"), ("A", "B")}

    def test_from_record(self):
        record = GraphRecord("r", {("A", "B"): 1.0, ("B", "B"): 2.0})
        q = GraphQuery.from_record(record)
        assert q.elements == record.elements()

    def test_equality_and_hash(self):
        a = GraphQuery([("A", "B")])
        b = GraphQuery([("A", "B")])
        assert a == b and hash(a) == hash(b)


class TestStructure:
    def test_nodes_edges_measured(self):
        q = GraphQuery([("A", "B"), ("B", "B")])
        assert q.nodes() == {"A", "B"}
        assert q.edges() == {("A", "B")}
        assert q.measured_nodes() == {"B"}

    def test_sources_terminals(self):
        q = GraphQuery.from_node_chain("A", "B", "C")
        assert q.sources() == {"A"}
        assert q.terminals() == {"C"}

    def test_maximal_paths(self):
        q = GraphQuery([("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")])
        assert {p.nodes for p in q.maximal_paths()} == {
            ("A", "B", "D"),
            ("A", "C", "D"),
        }

    def test_matches_record(self):
        q = GraphQuery([("A", "B")])
        assert q.matches(GraphRecord("r", {("A", "B"): 1.0, ("B", "C"): 2.0}))
        assert not q.matches(GraphRecord("r", {("B", "C"): 2.0}))

    def test_intersect(self):
        a = GraphQuery([("A", "B"), ("B", "C")])
        b = GraphQuery([("B", "C"), ("C", "D")])
        assert a.intersect(b).elements == {("B", "C")}

    def test_intersect_empty_returns_none(self):
        a = GraphQuery([("A", "B")])
        b = GraphQuery([("C", "D")])
        assert a.intersect(b) is None

    def test_union_and_subquery(self):
        a = GraphQuery([("A", "B")])
        b = GraphQuery([("B", "C")])
        u = a.union(b)
        assert a.is_subquery_of(u) and b.is_subquery_of(u)
        assert not u.is_subquery_of(a)


class TestExpressions:
    def test_operators_build_tree(self):
        a = GraphQuery([("A", "B")])
        b = GraphQuery([("B", "C")])
        c = GraphQuery([("C", "D")])
        expr = (a & b) | c
        assert isinstance(expr, Or)
        assert isinstance(expr.left, And)

    def test_sub_builds_andnot(self):
        a = GraphQuery([("A", "B")])
        b = GraphQuery([("B", "C")])
        assert isinstance(a - b, AndNot)

    def test_atoms_left_to_right(self):
        a = GraphQuery([("A", "B")])
        b = GraphQuery([("B", "C")])
        c = GraphQuery([("C", "D")])
        assert ((a & b) - c).atoms() == [a, b, c]

    def test_expression_equality(self):
        a = GraphQuery([("A", "B")])
        b = GraphQuery([("B", "C")])
        assert (a & b) == (a & b)
        assert (a & b) != (b & a)
        assert (a & b) != (a | b)

    def test_invalid_operand(self):
        with pytest.raises(TypeError):
            And(GraphQuery([("A", "B")]), "not a query")

    def test_repr_symbols(self):
        a = GraphQuery([("A", "B")])
        b = GraphQuery([("B", "C")])
        assert "AND NOT" in repr(a - b)
        assert "OR" in repr(a | b)


class TestPathAggregationQuery:
    def test_construction(self):
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B"), "SUM")
        assert q.function == "sum"

    def test_requires_atomic_query(self):
        a = GraphQuery([("A", "B")])
        with pytest.raises(TypeError):
            PathAggregationQuery(a & a, "sum")

    def test_equality(self):
        g = GraphQuery.from_node_chain("A", "B")
        assert PathAggregationQuery(g, "sum") == PathAggregationQuery(g, "sum")
        assert PathAggregationQuery(g, "sum") != PathAggregationQuery(g, "max")

    def test_maximal_paths_delegates(self):
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B", "C"), "sum")
        assert [p.nodes for p in q.maximal_paths()] == [("A", "B", "C")]

    def test_repr(self):
        q = PathAggregationQuery(GraphQuery.from_node_chain("A", "B"), "max")
        assert repr(q).startswith("MAX_")

"""Fault-injection helpers for the durability test suite.

Simulates the storage failures a production deployment actually sees:

* **mid-save crashes** — the persistence layer announces each distinct
  on-disk state transition through ``repro.columnstore.persistence``'s
  save-hook seam; :func:`crash_at_stage` raises :class:`SimulatedCrash`
  from inside a chosen transition, modeling a process killed at exactly
  that instant;
* **torn writes** — :func:`truncate_file` chops bytes off a column file,
  as when the OS flushed only part of a page before power loss;
* **bit rot** — :func:`flip_bit` flips one bit in a file's payload;
* **metadata corruption** — :func:`corrupt_manifest_crc` damages a stored
  checksum inside the manifest itself;
* **shard failures mid-query** — :class:`FaultyRelation` wraps one shard
  of a live :class:`~repro.columnstore.sharded.ShardedTable` and makes
  chosen methods raise, either a fixed number of times (a transient I/O
  blip the retry policy should absorb) or forever (a dead shard the
  circuit breaker should isolate); :func:`install_faulty_shard` splices
  the proxy into a running engine.

All helpers except the shard proxies operate on a relation directory
written by ``save_relation``.
"""

from __future__ import annotations

import contextlib
import json
from pathlib import Path

from repro.columnstore import persistence

__all__ = [
    "SimulatedCrash",
    "SimulatedShardIOError",
    "FaultyRelation",
    "install_faulty_shard",
    "record_save_stages",
    "save_stage_labels",
    "crash_at_stage",
    "crash_on_nth",
    "truncate_file",
    "flip_bit",
    "corrupt_manifest_crc",
    "data_file",
    "live_manifest",
]


class SimulatedCrash(RuntimeError):
    """Raised by an injected hook to model a process dying mid-save."""


class SimulatedShardIOError(OSError):
    """Raised by :class:`FaultyRelation` to model a shard I/O failure."""


class FaultyRelation:
    """Proxy around one shard's relation that fails chosen methods.

    ``fail_times=N`` models a transient blip: the first ``N`` intercepted
    calls raise :class:`SimulatedShardIOError`, later ones pass through —
    the retry policy should absorb these without the caller noticing.
    ``fail_times=None`` models a dead shard: every intercepted call
    raises, which the circuit breaker should learn to stop probing.

    Everything else (``n_records``, catalog lookups, untouched methods)
    delegates to the wrapped relation, so planning and shard accounting
    still see an intact table.
    """

    def __init__(self, inner, methods=("bitmap",), fail_times=None):
        self._inner = inner
        self._methods = frozenset(methods)
        self._fail_times = fail_times
        self.calls = 0
        self.failures = 0

    def heal(self) -> None:
        """Stop injecting failures from now on."""
        self._fail_times = 0

    def _maybe_fail(self, name: str) -> None:
        self.calls += 1
        if self._fail_times is None or self.failures < self._fail_times:
            self.failures += 1
            raise SimulatedShardIOError(
                f"injected I/O failure in {name} (#{self.failures})"
            )

    def __getattr__(self, name: str):
        attr = getattr(self._inner, name)
        if name in self._methods and callable(attr):
            def wrapped(*args, **kwargs):
                self._maybe_fail(name)
                return attr(*args, **kwargs)

            return wrapped
        return attr

    _OWN = frozenset({"_inner", "_methods", "_fail_times", "calls", "failures"})

    def __setattr__(self, name: str, value) -> None:
        # Attribute writes (e.g. the table rewiring ``shard.collector``)
        # must land on the real relation, not shadow it on the proxy.
        if name in self._OWN:
            object.__setattr__(self, name, value)
        else:
            setattr(self._inner, name, value)

    def __repr__(self) -> str:
        return f"FaultyRelation({self._inner!r}, failures={self.failures})"


def install_faulty_shard(
    engine, shard: int, methods=("bitmap",), fail_times=None
) -> FaultyRelation:
    """Splice a :class:`FaultyRelation` over shard ``shard`` of a running
    engine's sharded backend; returns the proxy (``proxy.heal()`` or
    assigning ``proxy._inner`` back restores health).  No epoch bump: the
    engine sees the same generation, which is exactly the scenario the
    circuit breaker is keyed for.
    """
    table = engine.relation
    proxy = FaultyRelation(table.shards[shard], methods=methods, fail_times=fail_times)
    table.shards[shard] = proxy
    return proxy


@contextlib.contextmanager
def _installed_hook(hook):
    persistence._save_hooks.append(hook)
    try:
        yield
    finally:
        persistence._save_hooks.remove(hook)


@contextlib.contextmanager
def record_save_stages(stages: list):
    """Append every save-stage label reached inside the block to ``stages``."""
    with _installed_hook(stages.append):
        yield stages


def save_stage_labels(relation, directory) -> list[str]:
    """Run one real save into ``directory``, returning its stage labels —
    the crash points a subsequent :func:`crash_at_stage` sweep can hit."""
    stages: list[str] = []
    with record_save_stages(stages):
        persistence.save_relation(relation, directory)
    return stages


@contextlib.contextmanager
def crash_at_stage(target: int | str):
    """Crash the save when it reaches a stage.

    ``target`` is either a stage index (0-based position in the save's
    stage sequence) or an exact stage label.
    """
    seen = 0

    def hook(stage: str) -> None:
        nonlocal seen
        if isinstance(target, int):
            if seen == target:
                raise SimulatedCrash(f"stage[{target}]={stage}")
            seen += 1
        elif stage == target:
            raise SimulatedCrash(stage)

    with _installed_hook(hook):
        yield


@contextlib.contextmanager
def crash_on_nth(label: str, n: int):
    """Crash on the ``n``-th (1-based) occurrence of ``label`` across all
    saves inside the block — e.g. kill the third batch of a bulk load."""
    seen = 0

    def hook(stage: str) -> None:
        nonlocal seen
        if stage == label:
            seen += 1
            if seen == n:
                raise SimulatedCrash(f"{label}#{n}")

    with _installed_hook(hook):
        yield


def truncate_file(path: str | Path, nbytes: int = 1) -> None:
    """Torn write: drop the final ``nbytes`` bytes of ``path``."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: max(len(data) - nbytes, 0)])


def flip_bit(path: str | Path, byte_offset: int = -1, bit: int = 0) -> None:
    """Bit rot: flip one bit at ``byte_offset`` (negative counts from the
    end, so the default hits payload rather than the .npy header)."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    data[byte_offset] ^= 1 << bit
    path.write_bytes(bytes(data))


def live_manifest(root: str | Path) -> dict:
    """The relation directory's current manifest, parsed."""
    return json.loads((Path(root) / "manifest.json").read_text())


def data_file(root: str | Path, name: str) -> Path:
    """Path of column file ``name`` inside the live generation directory."""
    manifest = live_manifest(root)
    return Path(root) / manifest["directory"] / name


def corrupt_manifest_crc(root: str | Path, name: str) -> None:
    """Flip bits in the checksum the manifest stores for ``name``."""
    mpath = Path(root) / "manifest.json"
    manifest = json.loads(mpath.read_text())
    manifest["files"][name]["crc32"] ^= 0xFFFF
    mpath.write_text(json.dumps(manifest))

"""Fault-injection helpers for the durability test suite.

Simulates the storage failures a production deployment actually sees:

* **mid-save crashes** — the persistence layer announces each distinct
  on-disk state transition through ``repro.columnstore.persistence``'s
  save-hook seam; :func:`crash_at_stage` raises :class:`SimulatedCrash`
  from inside a chosen transition, modeling a process killed at exactly
  that instant;
* **torn writes** — :func:`truncate_file` chops bytes off a column file,
  as when the OS flushed only part of a page before power loss;
* **bit rot** — :func:`flip_bit` flips one bit in a file's payload;
* **metadata corruption** — :func:`corrupt_manifest_crc` damages a stored
  checksum inside the manifest itself.

All helpers operate on a relation directory written by ``save_relation``.
"""

from __future__ import annotations

import contextlib
import json
from pathlib import Path

from repro.columnstore import persistence

__all__ = [
    "SimulatedCrash",
    "record_save_stages",
    "save_stage_labels",
    "crash_at_stage",
    "crash_on_nth",
    "truncate_file",
    "flip_bit",
    "corrupt_manifest_crc",
    "data_file",
    "live_manifest",
]


class SimulatedCrash(RuntimeError):
    """Raised by an injected hook to model a process dying mid-save."""


@contextlib.contextmanager
def _installed_hook(hook):
    persistence._save_hooks.append(hook)
    try:
        yield
    finally:
        persistence._save_hooks.remove(hook)


@contextlib.contextmanager
def record_save_stages(stages: list):
    """Append every save-stage label reached inside the block to ``stages``."""
    with _installed_hook(stages.append):
        yield stages


def save_stage_labels(relation, directory) -> list[str]:
    """Run one real save into ``directory``, returning its stage labels —
    the crash points a subsequent :func:`crash_at_stage` sweep can hit."""
    stages: list[str] = []
    with record_save_stages(stages):
        persistence.save_relation(relation, directory)
    return stages


@contextlib.contextmanager
def crash_at_stage(target: int | str):
    """Crash the save when it reaches a stage.

    ``target`` is either a stage index (0-based position in the save's
    stage sequence) or an exact stage label.
    """
    seen = 0

    def hook(stage: str) -> None:
        nonlocal seen
        if isinstance(target, int):
            if seen == target:
                raise SimulatedCrash(f"stage[{target}]={stage}")
            seen += 1
        elif stage == target:
            raise SimulatedCrash(stage)

    with _installed_hook(hook):
        yield


@contextlib.contextmanager
def crash_on_nth(label: str, n: int):
    """Crash on the ``n``-th (1-based) occurrence of ``label`` across all
    saves inside the block — e.g. kill the third batch of a bulk load."""
    seen = 0

    def hook(stage: str) -> None:
        nonlocal seen
        if stage == label:
            seen += 1
            if seen == n:
                raise SimulatedCrash(f"{label}#{n}")

    with _installed_hook(hook):
        yield


def truncate_file(path: str | Path, nbytes: int = 1) -> None:
    """Torn write: drop the final ``nbytes`` bytes of ``path``."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: max(len(data) - nbytes, 0)])


def flip_bit(path: str | Path, byte_offset: int = -1, bit: int = 0) -> None:
    """Bit rot: flip one bit at ``byte_offset`` (negative counts from the
    end, so the default hits payload rather than the .npy header)."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    data[byte_offset] ^= 1 << bit
    path.write_bytes(bytes(data))


def live_manifest(root: str | Path) -> dict:
    """The relation directory's current manifest, parsed."""
    return json.loads((Path(root) / "manifest.json").read_text())


def data_file(root: str | Path, name: str) -> Path:
    """Path of column file ``name`` inside the live generation directory."""
    manifest = live_manifest(root)
    return Path(root) / manifest["directory"] / name


def corrupt_manifest_crc(root: str | Path, name: str) -> None:
    """Flip bits in the checksum the manifest stores for ``name``."""
    mpath = Path(root) / "manifest.json"
    manifest = json.loads(mpath.read_text())
    manifest["files"][name]["crc32"] ^= 0xFFFF
    mpath.write_text(json.dumps(manifest))

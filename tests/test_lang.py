"""Tests for the layered query-language front-end (repro.lang).

Covers each layer in isolation — lexer positions, parser AST shapes,
lowering semantics, canonical unparsing — plus the cross-layer
contracts: the round-trip law, the quoting rule that fixes the
hyphenated-identifier ambiguity, position-annotated errors for every
malformed input, catalog did-you-mean diagnostics, and workload
parsing/formatting.
"""

from __future__ import annotations

import pytest

from repro.core import And, AndNot, GraphQuery, Or, PathAggregationQuery
from repro.errors import QuerySyntaxError
from repro.lang import (
    Aggregate,
    AndNotExpr,
    ElementSet,
    JoinExpr,
    Name,
    Node,
    OrExpr,
    PathPattern,
    Span,
    Step,
    canonical,
    diagnose,
    format_workload,
    parse_aggregation,
    parse_query,
    parse_query_ast,
    parse_statement,
    parse_statement_ast,
    parse_workload,
    render_name,
    render_syntax_error,
    tokenize,
    try_unparse,
    unparse,
    unparse_ast,
)
from repro.lang.unparse import UnparseError


class TestLexer:
    def test_tokens_carry_positions(self):
        tokens = tokenize("A -> 'B b'")
        assert [(t.kind, t.pos) for t in tokens] == [
            ("word", 0), ("arrow", 2), ("quoted", 5)
        ]
        assert tokens[2].value == "B b"
        assert tokens[2].line == 1 and tokens[2].column == 6

    def test_multiline_positions(self):
        tokens = tokenize("A\n  -> B")
        arrow = tokens[1]
        assert (arrow.line, arrow.column) == (2, 3)

    def test_comments_dropped_by_default(self):
        assert [t.kind for t in tokenize("A # -> B")] == ["word"]
        kept = tokenize("A # tail", keep_comments=True)
        assert [t.kind for t in kept] == ["word", "comment"]
        assert kept[1].text == "# tail"

    def test_quoted_escapes(self):
        (token,) = tokenize(r"'it\'s \\ a\ttab'")
        assert token.value == "it's \\ a\ttab"

    def test_unknown_escape_positioned(self):
        with pytest.raises(QuerySyntaxError, match=r"unknown escape \\q") as e:
            tokenize(r"'a\qb'")
        assert e.value.position == 2

    def test_unclosed_quote(self):
        with pytest.raises(QuerySyntaxError, match="unclosed quote") as e:
            tokenize("A -> 'oops")
        assert e.value.position == 5

    def test_hyphen_word_vs_arrow(self):
        assert [t.kind for t in tokenize("hub-1->x")] == [
            "word", "arrow", "word"
        ]
        assert tokenize("hub-1->x")[0].value == "hub-1"


class TestParserAst:
    def test_chain_ast(self):
        ast = parse_query_ast("A -> B")
        assert ast == PathPattern(
            (Step((Node(Name("A")),)), Step((Node(Name("B")),)))
        )

    def test_spans_do_not_affect_equality(self):
        assert parse_query_ast("A->B") == parse_query_ast("  A  ->  B ")
        span = parse_query_ast("  A  ->  B ").span
        assert (span.start, span.end) == (2, 10)

    def test_open_ends(self):
        ast = parse_query_ast("-> G -> I")
        assert ast.open_start and not ast.open_end
        ast = parse_query_ast("A -> D ->")
        assert ast.open_end and not ast.open_start

    def test_measured_marker(self):
        ast = parse_query_ast("A -> D! -> E")
        assert ast.steps[1].nodes[0].measured
        assert not ast.steps[0].nodes[0].measured

    def test_composite_step(self):
        ast = parse_query_ast("[A, G] -> I")
        assert ast.steps[0].is_composite
        assert [n.name.value for n in ast.steps[0].nodes] == ["A", "G"]

    def test_join_left_associative(self):
        ast = parse_query_ast("A -> B -> JOIN B -> C -> JOIN C -> D")
        assert isinstance(ast, JoinExpr)
        assert isinstance(ast.left, JoinExpr)
        assert isinstance(ast.left.left, PathPattern)

    def test_join_unicode_spelling(self):
        assert parse_query_ast("A -> B -> ⋈ B -> C") == parse_query_ast(
            "A -> B -> JOIN B -> C"
        )

    def test_boolean_precedence(self):
        ast = parse_query_ast("A->B OR C->D AND NOT {(E,F)}")
        assert isinstance(ast, OrExpr)
        assert isinstance(ast.right, AndNotExpr)
        assert isinstance(ast.right.right, ElementSet)

    def test_keywords_reserved_but_quotable(self):
        with pytest.raises(QuerySyntaxError, match="quote 'AND'"):
            parse_query_ast("AND -> B")
        ast = parse_query_ast("'AND' -> B")
        assert ast.steps[0].nodes[0].name.value == "AND"

    def test_aggregation_statement_detection(self):
        assert isinstance(parse_statement_ast("SUM A -> B"), Aggregate)
        # a quoted head word is always a node label, never a function
        assert isinstance(parse_statement_ast("'sum' -> B"), PathPattern)


class TestLowering:
    def test_marker_adds_self_edge(self):
        q = parse_query("A -> D! -> E")
        assert q.elements == {("A", "D"), ("D", "E"), ("D", "D")}

    def test_single_measured_node(self):
        assert parse_query("X!") == GraphQuery([("X", "X")])

    def test_open_end_excludes_marked_endpoint(self):
        # the paper's half-open [A,D): D's own measure is excluded even
        # when D carries a measure in the database
        assert parse_query("A -> D! ->") == GraphQuery([("A", "D")])
        assert parse_query("-> A! -> D") == GraphQuery([("A", "D")])

    def test_composite_expands_to_or_fold(self):
        q = parse_query("[A, G] -> I")
        assert q == Or(GraphQuery([("A", "I")]), GraphQuery([("G", "I")]))

    def test_composite_drops_non_simple_combos(self):
        q = parse_query("[A, B] -> B")
        assert q == GraphQuery([("A", "B")])

    def test_composite_with_no_simple_expansion(self):
        with pytest.raises(QuerySyntaxError, match="no simple expansion"):
            parse_query("[A, B] -> A -> B")

    def test_single_node_step_repeat_is_an_error(self):
        # a one-node bracket is just that node, so the path is non-simple
        with pytest.raises(QuerySyntaxError, match="repeats node 'B'"):
            parse_query("[B] -> B")

    def test_join_requires_one_open_side(self):
        q = parse_query("A -> B -> JOIN B -> C")
        assert q == GraphQuery([("A", "B"), ("B", "C")])
        with pytest.raises(QuerySyntaxError, match="path join"):
            parse_query("A -> B JOIN B -> C")  # B counted twice

    def test_join_shared_measure_counted_once(self):
        q = parse_query("A -> B -> JOIN B! -> C")
        assert q == GraphQuery([("A", "B"), ("B", "C"), ("B", "B")])

    def test_join_over_composites(self):
        # only the F-ending expansion joins the F-starting right path
        q = parse_query("A -> [F, Z] -> JOIN F -> J")
        assert q == GraphQuery([("A", "F"), ("F", "J")])

    def test_aggregation(self):
        agg = parse_aggregation("SUM A -> D! -> E")
        assert agg == PathAggregationQuery(
            GraphQuery([("A", "D"), ("D", "E"), ("D", "D")]), "sum"
        )

    def test_statement_autodetects(self):
        assert isinstance(parse_statement("SUM A -> B"), PathAggregationQuery)
        assert isinstance(parse_statement("A -> B"), GraphQuery)
        assert parse_statement("'sum' -> B") == GraphQuery([("sum", "B")])


ERROR_TABLE = [
    # (input, message fragment, expected position)
    ("", "empty query", 0),
    ("   ", "empty query", 0),
    ("{}", "element set cannot be empty", 1),
    ("{(A,B),}", "'('", 7),
    ("{(A B)}", "','", 4),
    ("{(A,B)", "'}'", 6),
    ("(A->B", "')'", 5),
    ("A ->", "open-ended single node", 0),
    ("-> A", "open-ended single node", 0),
    ("A", "a path needs at least two nodes", 0),
    ("A -> -> B", "unexpected '->'", 5),
    ("A -> B)", "trailing input", 6),
    ("A->B C->D", "trailing input", 5),
    ("'oops", "unclosed quote", 0),
    ("A -> B; x", "unexpected character ';'", 6),
    ("[ ] -> B", "composite step needs at least one node", 2),
    ("[A, ] -> B", "node name", 4),
    ("A -> B -> JOIN", "a path", 14),
    ("AND -> B", "quote 'AND'", 0),
    ("A -> OR", "unexpected end of query", 7),
    ("A -> A", "repeats node 'A'", 0),
    ("SUM A->B OR C->D", "single graph query", 4),
    ("A -> B JOIN B -> C", "path join is undefined", 0),
]


class TestErrorPositions:
    @pytest.mark.parametrize("text,fragment,position", ERROR_TABLE)
    def test_malformed_input_is_positioned(self, text, fragment, position):
        with pytest.raises(QuerySyntaxError) as e:
            parse_statement(text)
        assert fragment in str(e.value)
        assert e.value.position == position

    def test_missing_function_name(self):
        with pytest.raises(QuerySyntaxError, match="function name") as e:
            parse_aggregation("A -> B")
        assert e.value.position == 0

    def test_unknown_function_did_you_mean(self):
        with pytest.raises(QuerySyntaxError, match="did you mean 'SUM'"):
            parse_statement_and_lower_unknown_function()

    def test_caret_rendering(self):
        with pytest.raises(QuerySyntaxError) as e:
            parse_query("A -> B )")
        rendered = render_syntax_error(e.value)
        lines = rendered.splitlines()
        assert lines[1] == "  A -> B )"
        assert lines[2] == "         ^"

    def test_caret_rendering_with_line_number(self):
        with pytest.raises(QuerySyntaxError) as e:
            parse_workload("A -> B\nC -> )\n")
        assert e.value.line == 2
        assert render_syntax_error(e.value).startswith("line 2: ")


def parse_statement_and_lower_unknown_function():
    from repro.lang import lower_statement

    ast = parse_statement_ast("A -> B")
    bad = Aggregate(Name("sim"), ast, Span(0, 0))
    lower_statement(bad, source="SIM A -> B")


class TestHyphenQuotingRegression:
    """Pinned regression for the hyphenated-identifier ambiguity.

    ``A-1 -> B`` lexes ``A-1`` as one word, so an unparser printing the
    label bare round-trips — but only because of the lexer's ``-(?!>)``
    rule.  Labels like ``a->b`` or ``a b`` would re-lex differently, so
    the canonical unparser must quote anything that is not one safe bare
    word.  These cases are pinned so the quoting rule cannot regress.
    """

    @pytest.mark.parametrize(
        "label",
        [
            "hub-1", "hub_2", "42", "a.b.c", "-",  # safe bare words
        ],
    )
    def test_safe_words_stay_bare(self, label):
        assert render_name(label) == label
        q = GraphQuery([(label, "zz")])
        assert parse_query(unparse(q)) == q

    @pytest.mark.parametrize(
        "label",
        [
            "a->b",      # would re-lex as word, arrow, word
            "a b",       # whitespace splits
            "a,b", "a(b)", "a#b", "{x}", "[x]", "x!",
            "it's",      # quote needs escaping
            "back\\slash",
            "new\nline", "tab\there",
            "AND", "or", "Join", "not",   # reserved keywords
            "sum", "AVG",                 # aggregate function names
            "",          # empty label
        ],
    )
    def test_unsafe_words_are_quoted_and_roundtrip(self, label):
        rendered = render_name(label)
        assert rendered.startswith("'") and rendered.endswith("'")
        q = GraphQuery([(label, "zz")])
        assert parse_query(unparse(q)) == q

    def test_non_string_label_has_no_text_form(self):
        q = GraphQuery([(1, 2)])
        with pytest.raises(UnparseError):
            unparse(q)
        assert try_unparse(q) is None


class TestCanonicalUnparse:
    def test_chain_recovery(self):
        q = GraphQuery([("A", "D"), ("D", "E"), ("D", "D")])
        assert unparse(q) == "A -> D! -> E"

    def test_lone_self_edge(self):
        assert unparse(GraphQuery([("X", "X")])) == "X!"

    def test_non_path_falls_back_to_element_set(self):
        q = GraphQuery([("A", "B"), ("A", "C")])
        assert unparse(q) == "{(A,B), (A,C)}"
        cyc = GraphQuery([("A", "B"), ("B", "A")])
        assert unparse(cyc) == "{(A,B), (B,A)}"

    def test_off_chain_measure_falls_back(self):
        q = GraphQuery([("A", "B"), ("C", "C")])
        assert unparse(q) == "{(A,B), (C,C)}"

    def test_minimal_parens(self):
        a, b, c = (GraphQuery([(x, "z")]) for x in "abc")
        assert unparse(Or(Or(a, b), c)) == "a -> z OR b -> z OR c -> z"
        assert unparse(Or(a, Or(b, c))) == "a -> z OR (b -> z OR c -> z)"
        assert unparse(And(Or(a, b), c)) == "(a -> z OR b -> z) AND c -> z"
        assert unparse(Or(a, And(b, c))) == "a -> z OR b -> z AND c -> z"
        assert (
            unparse(AndNot(a, And(b, c)))
            == "a -> z AND NOT (b -> z AND c -> z)"
        )

    def test_aggregation(self):
        agg = PathAggregationQuery(GraphQuery([("A", "B")]), "avg")
        assert unparse(agg) == "AVG A -> B"

    def test_canonical_is_idempotent(self):
        for text in [
            "A->D!->E",
            "{(D,D)}",
            "sum  {(A,B),(B,C)}",
            "(A->B OR C->D) AND NOT {(E,F)}",
            "'New York' -> 'Los Angeles'",
            "[A,G] -> I",
            "A -> B -> JOIN B! -> C",
        ]:
            once = canonical(text)
            assert canonical(once) == once

    def test_unparse_ast_preserves_surface(self):
        for text in [
            "-> [A, G] -> I ->",
            "A -> B -> JOIN B -> C JOIN'x'-> y",
            "SUM A -> 'New York'!",
        ]:
            ast = parse_statement_ast(text)
            assert parse_statement_ast(unparse_ast(ast)) == ast


class TestDiagnostics:
    def test_did_you_mean(self):
        ast = parse_query_ast("A -> Dd -> E")
        diags = diagnose(ast, ["A", "D", "E", "G"])
        assert len(diags) == 1
        assert diags[0].label == "Dd"
        assert diags[0].position == 5
        assert "did you mean 'D'" in diags[0].message

    def test_known_labels_are_silent(self):
        ast = parse_query_ast("A -> D")
        assert diagnose(ast, ["A", "D"]) == []

    def test_no_suggestion_when_nothing_close(self):
        ast = parse_query_ast("zzzzz -> A")
        (diag,) = diagnose(ast, ["A", "B"])
        assert "did you mean" not in diag.message

    def test_empty_catalog_is_silent(self):
        ast = parse_query_ast("A -> B")
        assert diagnose(ast, []) == []

    def test_engine_catalog(self, figure2_engine):
        ast = parse_query_ast("A -> Q -> EE")
        labels = [d.label for d in diagnose(ast, figure2_engine.catalog.nodes())]
        assert labels == ["Q", "EE"]


class TestWorkloads:
    WORKLOAD = (
        "# figure 2 queries\n"
        "A -> D -> E\n"
        "\n"
        "SUM E->F->G  # aggregation\n"
    )

    def test_parse_workload_lines(self):
        statements = parse_workload(self.WORKLOAD)
        assert [s.line for s in statements] == [2, 4]
        assert statements[0].query == GraphQuery([("A", "D"), ("D", "E")])
        assert isinstance(statements[1].query, PathAggregationQuery)

    def test_parse_workload_error_carries_line(self):
        with pytest.raises(QuerySyntaxError) as e:
            parse_workload("A -> B\n\nC -> \n")
        assert e.value.line == 3

    def test_format_preserves_comments_and_blanks(self):
        formatted = format_workload(self.WORKLOAD)
        assert formatted == (
            "# figure 2 queries\n"
            "A -> D -> E\n"
            "\n"
            "SUM E -> F -> G  # aggregation\n"
        )

    def test_format_is_idempotent(self):
        once = format_workload(self.WORKLOAD)
        assert format_workload(once) == once

    def test_format_preserves_meaning(self):
        before = [s.query for s in parse_workload(self.WORKLOAD)]
        after = [s.query for s in parse_workload(format_workload(self.WORKLOAD))]
        assert before == after

    def test_hash_inside_quotes_is_not_a_comment(self):
        statements = parse_workload("'a#b' -> C\n")
        assert statements[0].query == GraphQuery([("a#b", "C")])
        assert format_workload("'a#b' -> C\n") == "'a#b' -> C\n"


class TestCompatShim:
    def test_dsl_module_reexports(self):
        import repro
        import repro.dsl as dsl
        import repro.lang as lang

        assert dsl.parse_query is lang.parse_query
        assert dsl.parse_aggregation is lang.parse_aggregation
        assert repro.parse_query is lang.parse_query
        from repro.errors import QuerySyntaxError as canonical_error

        assert dsl.QuerySyntaxError is canonical_error

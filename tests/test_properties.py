"""Cross-cutting property tests: invariants that tie modules together."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GraphQuery, GraphRecord
from repro.core.hierarchy import NodeHierarchy, rollup_record
from repro.core.paths import adjacency_of
from repro.core.regions import Region, paths_through_region
from repro.dsl import parse_query

NODES = list("ABCDEFGH")


@st.composite
def records(draw):
    length = draw(st.integers(min_value=2, max_value=7))
    walk = draw(st.lists(st.sampled_from(NODES), min_size=length,
                         max_size=length, unique=True))
    measures = {
        (u, v): float(draw(st.integers(min_value=1, max_value=20)))
        for u, v in zip(walk, walk[1:])
    }
    node = draw(st.sampled_from(walk))
    if draw(st.booleans()):
        measures[(node, node)] = float(draw(st.integers(min_value=1, max_value=9)))
    return GraphRecord("r", measures)


@st.composite
def hierarchies(draw):
    groups = draw(
        st.dictionaries(st.sampled_from(NODES), st.sampled_from(["G1", "G2", "G3"]))
    )
    return NodeHierarchy(["base", "group"], [groups])


class TestRollupInvariants:
    @given(records(), hierarchies())
    @settings(max_examples=80, deadline=None)
    def test_sum_rollup_preserves_total(self, record, hierarchy):
        """Rolling up with SUM never loses or invents measure mass."""
        rolled = rollup_record(record, hierarchy, "group", function="sum")
        assert sum(rolled.measures().values()) == pytest.approx(
            sum(record.measures().values())
        )

    @given(records(), hierarchies())
    @settings(max_examples=60, deadline=None)
    def test_rollup_nodes_are_ancestors(self, record, hierarchy):
        rolled = rollup_record(record, hierarchy, "group")
        expected = {hierarchy.ancestor(n, "group") for n in record.nodes()}
        assert rolled.nodes() <= expected

    @given(records(), hierarchies())
    @settings(max_examples=60, deadline=None)
    def test_rollup_never_grows_element_count(self, record, hierarchy):
        rolled = rollup_record(record, hierarchy, "group")
        assert len(rolled) <= len(record)


@st.composite
def host_graphs(draw):
    n_edges = draw(st.integers(min_value=2, max_value=10))
    edges = draw(
        st.sets(
            st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)).filter(
                lambda e: e[0] != e[1]
            ),
            min_size=n_edges,
            max_size=n_edges,
        )
    )
    nodes = sorted({u for e in edges for u in e})
    region_size = draw(st.integers(min_value=1, max_value=max(1, len(nodes) // 2)))
    region_nodes = draw(
        st.sets(st.sampled_from(nodes), min_size=region_size, max_size=region_size)
    )
    return sorted(edges), frozenset(region_nodes)


class TestRegionInvariants:
    @given(host_graphs())
    @settings(max_examples=60, deadline=None)
    def test_region_paths_are_host_paths(self, case):
        edges, region_nodes = case
        region = Region("R", region_nodes, host_edges=edges)
        edge_set = set(edges)
        for path in paths_through_region(edges, region, max_length=6):
            for edge in path.edges():
                assert edge in edge_set

    @given(host_graphs())
    @settings(max_examples=60, deadline=None)
    def test_region_paths_touch_region(self, case):
        edges, region_nodes = case
        region = Region("R", region_nodes, host_edges=edges)
        for path in paths_through_region(edges, region, max_length=6):
            assert any(n in region_nodes for n in path.nodes)

    @given(host_graphs())
    @settings(max_examples=40, deadline=None)
    def test_region_paths_are_simple(self, case):
        edges, region_nodes = case
        region = Region("R", region_nodes, host_edges=edges)
        for path in paths_through_region(edges, region, max_length=6):
            assert len(set(path.nodes)) == len(path.nodes)


class TestDslRoundtrip:
    @given(st.lists(st.sampled_from(NODES), min_size=2, max_size=6, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_chain_roundtrip(self, nodes):
        text = " -> ".join(nodes)
        assert parse_query(text) == GraphQuery.from_node_chain(*nodes)

    @given(
        st.sets(
            st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_element_set_roundtrip(self, elements):
        text = "{" + ", ".join(f"({u},{v})" for u, v in sorted(elements)) + "}"
        assert parse_query(text) == GraphQuery(elements)


class TestAdjacencyDeterminism:
    @given(
        st.sets(
            st.tuples(st.sampled_from(NODES), st.sampled_from(NODES)),
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_adjacency_sorted_and_self_edge_free(self, edges):
        adjacency = adjacency_of(edges)
        for node, successors in adjacency.items():
            assert successors == sorted(successors, key=repr)
            assert node not in successors or (node, node) not in edges

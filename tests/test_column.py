"""Tests for NULL-able measure columns."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore import Bitmap, MeasureColumn, MeasureColumnBuilder


class TestConstruction:
    def test_from_optionals(self):
        col = MeasureColumn.from_optionals([1.0, None, 3.5])
        assert len(col) == 3
        assert col[0] == 1.0
        assert col[1] is None
        assert col[2] == 3.5

    def test_nulls(self):
        col = MeasureColumn.nulls(5)
        assert col.non_null_count() == 0
        assert all(col[i] is None for i in range(5))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MeasureColumn(np.zeros(3), Bitmap.zeros(4))

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError):
            MeasureColumn(np.zeros((2, 2)), Bitmap.zeros(4))


class TestAccess:
    def test_validity_is_presence_bitmap(self):
        col = MeasureColumn.from_optionals([1.0, None, 2.0])
        assert col.validity.to_indices().tolist() == [0, 2]

    def test_values_nan_for_null(self):
        col = MeasureColumn.from_optionals([None, 2.0])
        values = col.values()
        assert np.isnan(values[0]) and values[1] == 2.0

    def test_values_readonly(self):
        col = MeasureColumn.from_optionals([1.0])
        with pytest.raises(ValueError):
            col.values()[0] = 9.0

    def test_take(self):
        col = MeasureColumn.from_optionals([1.0, None, 3.0, 4.0])
        taken = col.take(np.array([0, 2]))
        assert taken.tolist() == [1.0, 3.0]

    def test_take_null_positions_give_nan(self):
        col = MeasureColumn.from_optionals([1.0, None])
        assert np.isnan(col.take(np.array([1]))[0])

    def test_equality_ignores_nan_payload(self):
        a = MeasureColumn(np.array([1.0, np.nan]), Bitmap.from_bools([True, False]))
        b = MeasureColumn(np.array([1.0, 777.0]), Bitmap.from_bools([True, False]))
        assert a == b

    def test_inequality_on_values(self):
        a = MeasureColumn.from_optionals([1.0, 2.0])
        b = MeasureColumn.from_optionals([1.0, 3.0])
        assert a != b


class TestFootprint:
    def test_sparse_nbytes_counts_non_null_only(self):
        col = MeasureColumn.from_optionals([1.0] * 10 + [None] * 90)
        assert col.nbytes() == 8 * 10 + col.validity.nbytes()

    def test_dense_nbytes_counts_every_row(self):
        col = MeasureColumn.from_optionals([1.0] * 10 + [None] * 90)
        assert col.nbytes_dense() == 8 * 100 + col.validity.nbytes()

    def test_dense_independent_of_density(self):
        sparse = MeasureColumn.from_optionals([None] * 100)
        dense = MeasureColumn.from_optionals([1.0] * 100)
        assert sparse.nbytes_dense() == dense.nbytes_dense()


class TestBuilder:
    def test_builds_in_order(self):
        builder = MeasureColumnBuilder()
        builder.append(1.0)
        builder.append(None)
        builder.append(2.0)
        col = builder.build()
        assert [col[i] for i in range(3)] == [1.0, None, 2.0]

    def test_pad_to(self):
        builder = MeasureColumnBuilder()
        builder.append(5.0)
        builder.pad_to(4)
        col = builder.build()
        assert len(col) == 4
        assert col.non_null_count() == 1

    def test_pad_shorter_rejected(self):
        builder = MeasureColumnBuilder()
        builder.append(1.0)
        builder.append(2.0)
        with pytest.raises(ValueError):
            builder.pad_to(1)


class TestProperties:
    @given(
        st.lists(
            st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
            max_size=100,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_optionals(self, cells):
        col = MeasureColumn.from_optionals(cells)
        assert len(col) == len(cells)
        for i, cell in enumerate(cells):
            if cell is None:
                assert col[i] is None
            else:
                assert col[i] == pytest.approx(float(cell))

    @given(
        st.lists(
            st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_non_null_count_matches(self, cells):
        col = MeasureColumn.from_optionals(cells)
        assert col.non_null_count() == sum(1 for c in cells if c is not None)

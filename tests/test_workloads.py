"""Tests for workload generation: networks, corpora, query sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GraphAnalyticsEngine, GraphQuery
from repro.workloads import (
    DATASETS,
    as_aggregate_queries,
    build_dataset,
    corpus_statistics,
    generate_corpus,
    generate_dense_corpus,
    gnutella_network,
    ny_road_network,
    path_pool,
    sample_dense_queries,
    sample_edge_universe,
    sample_path_queries,
)


class TestNetworks:
    def test_ny_is_directed_and_sized(self):
        g = ny_road_network(400, seed=1)
        assert g.is_directed()
        assert g.number_of_nodes() >= 400
        assert g.number_of_edges() > 0

    def test_ny_low_max_degree(self):
        g = ny_road_network(400, seed=1)
        assert max(dict(g.out_degree()).values()) <= 4

    def test_ny_deterministic(self):
        a = ny_road_network(100, seed=5)
        b = ny_road_network(100, seed=5)
        assert set(a.edges()) == set(b.edges())

    def test_gnutella_heavy_tail(self):
        g = gnutella_network(500, seed=2)
        in_degrees = sorted(dict(g.in_degree()).values(), reverse=True)
        # Heavy tail: the top node has far more in-links than the median.
        assert in_degrees[0] >= 4 * max(np.median(in_degrees), 1)

    def test_gnutella_deterministic(self):
        a = gnutella_network(100, seed=3)
        b = gnutella_network(100, seed=3)
        assert set(a.edges()) == set(b.edges())

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ny_road_network(2)
        with pytest.raises(ValueError):
            gnutella_network(2)


class TestEdgeUniverse:
    def test_requested_size(self):
        g = ny_road_network(900, seed=1)
        universe = sample_edge_universe(g, 200, seed=0)
        assert len(universe) == 200
        assert len(set(universe)) == 200

    def test_too_large_raises(self):
        g = ny_road_network(100, seed=1)
        with pytest.raises(ValueError):
            sample_edge_universe(g, 10_000, seed=0)

    def test_edges_exist_in_network(self):
        g = ny_road_network(400, seed=1)
        universe = sample_edge_universe(g, 100, seed=0)
        for u, v in universe:
            assert g.has_edge(u, v)


class TestCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(
            ny_road_network(2500, seed=1),
            n_records=60,
            min_edges=10,
            max_edges=30,
            universe_size=300,
            seed=0,
        )

    def test_record_count(self, corpus):
        assert corpus.n_records == 60

    def test_sizes_within_bounds(self, corpus):
        lo, hi, avg = corpus.edges_per_record()
        assert hi <= 30
        assert lo >= 1
        assert lo <= avg <= hi

    def test_universe_respected(self, corpus):
        for edges in corpus.record_edges:
            assert edges.max() < len(corpus.universe)

    def test_walks_are_paths(self, corpus):
        assert corpus.walks
        for walk in corpus.walks:
            assert len(walk) >= 2
            assert len(set(walk)) == len(walk)  # self-avoiding

    def test_columnar_matches_records(self, corpus):
        columnar_engine = GraphAnalyticsEngine()
        columnar_engine.load_columnar(corpus.record_ids(), corpus.to_columnar())
        row_engine = GraphAnalyticsEngine()
        row_engine.load_records(corpus.to_records())
        edge = corpus.universe[int(corpus.record_edges[0][0])]
        q = GraphQuery([edge])
        assert columnar_engine.query(q).record_ids == row_engine.query(q).record_ids

    def test_statistics_shape(self, corpus):
        stats = corpus_statistics(corpus)
        assert stats["n_records"] == 60
        assert stats["distinct_edge_ids"] == 300
        assert stats["n_measures"] == corpus.n_measures()

    def test_deterministic(self):
        net = ny_road_network(2500, seed=1)
        a = generate_corpus(net, 10, 5, 10, universe_size=200, seed=9)
        b = generate_corpus(net, 10, 5, 10, universe_size=200, seed=9)
        assert all(
            np.array_equal(x, y) for x, y in zip(a.record_edges, b.record_edges)
        )

    def test_invalid_bounds(self):
        net = ny_road_network(400, seed=1)
        with pytest.raises(ValueError):
            generate_corpus(net, 5, min_edges=10, max_edges=5)


class TestDenseCorpus:
    def test_density_controls_record_size(self):
        net = ny_road_network(2500, seed=1)
        corpus = generate_dense_corpus(net, 20, density=0.2, universe_size=200, seed=0)
        for edges in corpus.record_edges:
            assert edges.size == 40

    def test_invalid_density(self):
        net = ny_road_network(400, seed=1)
        with pytest.raises(ValueError):
            generate_dense_corpus(net, 5, density=0.0)
        with pytest.raises(ValueError):
            generate_dense_corpus(net, 5, density=1.5)


class TestQuerySampling:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(
            ny_road_network(2500, seed=1),
            n_records=80,
            min_edges=10,
            max_edges=30,
            universe_size=300,
            seed=0,
        )

    def test_pool_paths_have_requested_hops(self, corpus):
        pool = path_pool(corpus, n_edges=4, pool_size=50, seed=1)
        assert all(len(p) == 5 for p in pool)

    def test_uniform_queries(self, corpus):
        queries = sample_path_queries(corpus, 20, 4, seed=2)
        assert len(queries) == 20
        assert all(len(q) == 4 for q in queries)

    def test_queries_hit_data(self, corpus):
        engine = GraphAnalyticsEngine()
        engine.load_columnar(corpus.record_ids(), corpus.to_columnar())
        queries = sample_path_queries(corpus, 20, 3, seed=3)
        hits = sum(len(engine.query(q)) for q in queries)
        assert hits > 0  # paths cut from walks must match their records

    def test_zipf_more_repetition_than_uniform(self, corpus):
        uniform = sample_path_queries(corpus, 60, 4, "uniform", seed=4)
        zipf = sample_path_queries(corpus, 60, 4, "zipf", zipf_s=1.5, seed=4)
        assert len(set(zipf)) < len(set(uniform))

    def test_unknown_distribution(self, corpus):
        with pytest.raises(ValueError):
            sample_path_queries(corpus, 5, 3, "gaussian")

    def test_dense_queries_sized_by_density(self):
        dense = generate_dense_corpus(
            ny_road_network(2500, seed=1), 20, density=0.2,
            universe_size=300, seed=0,
        )
        queries = sample_dense_queries(dense, 10, density=0.05, seed=5)
        assert all(len(q) == 15 for q in queries)

    def test_as_aggregate_queries(self, corpus):
        queries = sample_path_queries(corpus, 5, 3, seed=6)
        aggs = as_aggregate_queries(queries, "max")
        assert all(a.function == "max" for a in aggs)
        assert [a.query for a in aggs] == queries

    def test_deterministic_sampling(self, corpus):
        a = sample_path_queries(corpus, 10, 4, seed=7)
        b = sample_path_queries(corpus, 10, 4, seed=7)
        assert a == b


class TestDatasets:
    def test_specs_match_paper_parameters(self):
        assert DATASETS["NY"].min_edges == 35
        assert DATASETS["NY"].max_edges == 100
        assert DATASETS["GNU"].min_edges == 45
        assert DATASETS["NY"].universe_size == 1000
        assert DATASETS["NY"].paper_n_records == 320_000_000
        assert DATASETS["GNU"].paper_n_records == 100_000_000

    def test_build_with_explicit_count(self):
        corpus = build_dataset("NY", n_records=25, seed=1)
        assert corpus.n_records == 25

    def test_build_unknown_dataset(self):
        with pytest.raises(KeyError):
            build_dataset("NOPE")

    def test_gnu_dataset_builds(self):
        corpus = build_dataset("GNU", n_records=15, seed=1)
        assert corpus.n_records == 15
        assert len(corpus.universe) == 1000

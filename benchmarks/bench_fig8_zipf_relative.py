"""Figure 8: relative runtime of Zipf workloads vs view space budget.

Paper setup: Zipf-skewed query workloads share subpaths heavily, so the
same view budget buys bigger reductions than under uniform queries —
relative time falls to ~0.66 for simple graph queries and to ~0.06 (94%
reduction) for aggregate queries.

Four series as in the paper: {graph, aggregate} × {NY, GNU}, with time at
budget b divided by the no-view time of the same workload.
"""

from __future__ import annotations

import time

import pytest

from _data import emit, cached_engine, gnu_corpus, ny_corpus, scaled
from repro.workloads import as_aggregate_queries, sample_path_queries

N_RECORDS = {"NY": scaled(3000), "GNU": scaled(2000)}
N_QUERIES = 40
QUERY_EDGES = 8
BUDGET_PCTS = [0, 50, 100]

_results: dict[tuple[str, str, int], float] = {}


def _corpus(kind):
    return ny_corpus(N_RECORDS["NY"]) if kind == "NY" else gnu_corpus(N_RECORDS["GNU"])


def _zipf_queries(kind):
    return sample_path_queries(
        _corpus(kind), N_QUERIES, QUERY_EDGES, distribution="zipf",
        zipf_s=1.4, seed=10,
    )


@pytest.mark.parametrize("kind", ["NY", "GNU"])
@pytest.mark.parametrize("budget_pct", BUDGET_PCTS)
def test_graph_queries(benchmark, kind, budget_pct):
    engine = cached_engine(kind, N_RECORDS[kind])
    queries = _zipf_queries(kind)
    engine.drop_all_views()
    budget = round(budget_pct / 100 * N_QUERIES)
    if budget:
        engine.materialize_graph_views(queries, budget=budget, method="closed")
    benchmark(lambda: [engine.query(q, fetch_measures=False) for q in queries])
    _results[("graph", kind, budget_pct)] = benchmark.stats.stats.mean
    engine.drop_all_views()


@pytest.mark.parametrize("kind", ["NY", "GNU"])
@pytest.mark.parametrize("budget_pct", BUDGET_PCTS)
def test_aggregate_queries(benchmark, kind, budget_pct):
    engine = cached_engine(kind, N_RECORDS[kind])
    workload = as_aggregate_queries(_zipf_queries(kind), "sum")
    engine.drop_all_views()
    budget = round(budget_pct / 100 * N_QUERIES)
    if budget:
        engine.materialize_aggregate_views(workload, budget=budget)
    benchmark(lambda: [engine.aggregate(q) for q in workload])
    _results[("aggregate", kind, budget_pct)] = benchmark.stats.stats.mean
    engine.drop_all_views()


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(f"\n=== Figure 8: relative time, {N_QUERIES} Zipf queries ===")
    series = [
        ("graph", "GNU"), ("graph", "NY"),
        ("aggregate", "GNU"), ("aggregate", "NY"),
    ]
    header = " ".join(f"{q}-{k:>3}" for q, k in series)
    emit(f"{'budget%':>8} " + header)
    for pct in BUDGET_PCTS:
        cells = []
        for q, k in series:
            base = _results.get((q, k, 0))
            now = _results.get((q, k, pct))
            cells.append(
                f"{(now / base if base and now else float('nan')):>9.3f}"
            )
        emit(f"{pct:>8} " + " ".join(cells))
    # Paper shape: at full budget, aggregate queries gain more than simple
    # graph queries on the same dataset.
    for kind in ("NY", "GNU"):
        keys = [("aggregate", kind, 0), ("aggregate", kind, 100),
                ("graph", kind, 0), ("graph", kind, 100)]
        if all(k in _results for k in keys):
            agg_rel = _results[("aggregate", kind, 100)] / _results[("aggregate", kind, 0)]
            graph_rel = _results[("graph", kind, 100)] / _results[("graph", kind, 0)]
            assert agg_rel <= graph_rel * 1.25, (
                f"aggregate views should help at least as much as graph views ({kind})"
            )

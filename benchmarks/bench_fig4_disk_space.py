"""Figure 4: disk space vs record density, four systems.

Paper shape: the row store (and RDF store) grow linearly with density;
Neo4j needs the most space; the column store's (dense BAT model) footprint
is *constant* across density because every column always stores one cell
per record.

This bench is measurement-only (no timing loop): it reports the modeled
on-disk bytes of each store at 10/20/50% density, plus the column store's
real persisted (sparse) footprint for reference.
"""

from __future__ import annotations

import pytest

from _data import emit, baseline_for, dense_corpus, engine_for, scaled

N_RECORDS = scaled(300)
DENSITIES = [10, 20, 50]

_sizes: dict[tuple[str, int], int] = {}


@pytest.mark.parametrize("density", DENSITIES)
def test_sizes(benchmark, density):
    corpus = dense_corpus(N_RECORDS, density)

    def measure():
        engine = engine_for(corpus)
        _sizes[("column-store", density)] = engine.relation.base_size_bytes("dense")
        _sizes[("column-sparse", density)] = engine.relation.base_size_bytes("sparse")
        for name in ("row", "graph", "rdf"):
            store = baseline_for(name, corpus)
            _sizes[(store.name, density)] = store.disk_size_bytes()

    benchmark.pedantic(measure, rounds=1, iterations=1)
    assert _sizes[("column-store", density)] > 0


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(f"\n=== Figure 4: disk space (MB), {N_RECORDS} records ===")
    systems = ["column-store", "column-sparse", "rdf-store", "graph-db", "row-store"]
    emit(f"{'density%':>9} " + " ".join(f"{s:>14}" for s in systems))
    for d in DENSITIES:
        row = [f"{_sizes.get((s, d), 0) / 1e6:14.2f}" for s in systems]
        emit(f"{d:>9} " + " ".join(row))
    lo, hi = DENSITIES[0], DENSITIES[-1]
    # Column store (dense model) flat; row store linear in density.
    assert _sizes[("column-store", lo)] == _sizes[("column-store", hi)]
    assert _sizes[("row-store", hi)] > 3 * _sizes[("row-store", lo)]
    # Neo4j biggest at every density (paper's observation).
    for d in DENSITIES:
        others = [_sizes[(s, d)] for s in ("row-store", "rdf-store")]
        assert _sizes[("graph-db", d)] > max(others) * 0.9

"""Figure 5: query time vs edge-domain size (vertical partitioning).

Paper setup: 10M records at 10% density, universe 1K..100K distinct edge
ids; the master relation auto-partitions at 1000 columns, so bigger
domains mean more sub-relations joined per query.  The column store
degrades slowly (partition joins) but stays ahead of Neo4j, whose time
grows with query output.

Scaled here: ``scaled(1000)`` records at 10% density, universes 500..5000
(1..5 partitions at width 1000), with fixed ~10-edge queries so the sweep
isolates the domain-size effect (the paper's queries also stay within the
applications' typical sizes while the domain grows).
"""

from __future__ import annotations

import pytest

from _data import emit, baseline_for, dense_corpus, scaled
from repro.core import GraphAnalyticsEngine
from repro.workloads import sample_dense_queries

N_RECORDS = scaled(1000)
UNIVERSES = [500, 1000, 2000, 5000]
N_QUERIES = 8
PARTITION_WIDTH = 1000

_results: dict[tuple[str, int], float] = {}
_partitions: dict[int, int] = {}


QUERY_EDGES = 10


def _setup(universe):
    corpus = dense_corpus(N_RECORDS, 10, universe=universe)
    queries = sample_dense_queries(corpus, N_QUERIES, QUERY_EDGES / universe, seed=6)
    return corpus, queries


@pytest.mark.parametrize("universe", UNIVERSES)
def test_column_store(benchmark, universe):
    corpus, queries = _setup(universe)
    engine = GraphAnalyticsEngine(partition_width=PARTITION_WIDTH)
    engine.load_columnar(corpus.record_ids(), corpus.to_columnar())
    _partitions[universe] = engine.relation.n_partitions
    benchmark(lambda: [engine.query(q) for q in queries])
    _results[("column-store", universe)] = benchmark.stats.stats.mean


@pytest.mark.parametrize("universe", UNIVERSES)
def test_graph_db(benchmark, universe):
    corpus, queries = _setup(universe)
    store = baseline_for("graph", corpus)
    benchmark(lambda: [store.query(q) for q in queries])
    _results[("graph-db", universe)] = benchmark.stats.stats.mean


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(f"\n=== Figure 5: time (s) vs edge-domain size, {N_RECORDS} records ===")
    emit(f"{'universe':>9} {'parts':>6} {'column-store':>14} {'graph-db':>14}")
    for u in UNIVERSES:
        emit(
            f"{u:>9} {_partitions.get(u, 0):>6} "
            f"{_results.get(('column-store', u), float('nan')):14.4f} "
            f"{_results.get(('graph-db', u), float('nan')):14.4f}"
        )
    # Paper shape: the column store still wins at the largest domain.
    biggest = UNIVERSES[-1]
    if ("column-store", biggest) in _results:
        assert (
            _results[("column-store", biggest)] < _results[("graph-db", biggest)]
        ), "column store should beat the graph store even at large domains"

"""Resilience overhead and goodput under injected shard faults.

Three servers run the same zipf path-query workload (NY corpus, 4
record-range shards):

* ``baseline``      — healthy shards, no governance: the cost floor;
* ``no-governance`` — 5% of shard touches raise transient I/O errors and
  no resilience policy is installed: every fault kills its query, so
  goodput collapses roughly with the per-query fault exposure (each query
  touches every shard);
* ``governed``      — same 5% fault rate under the full governance stack:
  a :class:`ResiliencePolicy` (3 attempts, backoff) plus a per-query
  deadline.  Transient faults are retried through, so goodput should
  return to ~1.0 at a small latency premium.

Emits ``benchmarks/BENCH_resilience.json`` with per-config p50/p99 query
latency and goodput (successful queries per wall-clock second), plus the
headline ``goodput_recovered`` ratio (governed over no-governance).  The
report test asserts the acceptance bar: governance recovers at least
1.25x the ungoverned goodput at a 5% fault rate (gated on a full-scale run),
and governed answers match the healthy baseline exactly.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from _data import SCALE, emit, ny_corpus, scaled
from repro.core import GraphAnalyticsEngine
from repro.errors import ReproError
from repro.exec import QueryExecutor
from repro.io import ingest_records
from repro.resilience import ResiliencePolicy
from repro.workloads import sample_path_queries

N_RECORDS = scaled(10000)
QUERY_SIZE = 5
POOL_SIZE = 16
N_QUERIES = 128
ZIPF_S = 1.1
N_SHARDS = 4
FAULT_RATE = 0.05       # probability one shard touch raises, per bitmap fetch
TIMEOUT_S = 30.0        # generous per-query deadline for the governed config

JSON_PATH = Path(__file__).parent / "BENCH_resilience.json"

_results: dict[str, dict] = {}
_answers: dict[str, list] = {}


class FlakyShard:
    """Proxy over one shard relation whose ``bitmap`` fetches fail with a
    fixed probability — always transiently (the retry succeeds)."""

    def __init__(self, inner, rng, rate: float):
        import threading

        self._inner = inner
        self._rng = rng
        self._rate = rate
        self._lock = threading.Lock()  # shard pool workers share the rng

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if name == "bitmap" and callable(attr):
            def flaky(*args, **kwargs):
                with self._lock:
                    fail = self._rng.random() < self._rate
                if fail:
                    raise OSError("injected transient shard I/O error")
                return attr(*args, **kwargs)

            return flaky
        return attr


def _workload():
    corpus = ny_corpus(N_RECORDS)
    pool = sample_path_queries(corpus, POOL_SIZE, QUERY_SIZE, seed=17)
    rng = np.random.default_rng(19)
    ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, ZIPF_S)
    weights /= weights.sum()
    chosen = rng.choice(len(pool), size=N_QUERIES, p=weights)
    return corpus, [pool[i] for i in chosen]


def _engine(fault_seed: int | None = None) -> GraphAnalyticsEngine:
    corpus, _ = _workload()
    engine = GraphAnalyticsEngine(shards=N_SHARDS)
    ingest_records(engine, corpus.to_records(), jobs=N_SHARDS)
    if fault_seed is not None:
        rng = np.random.default_rng(fault_seed)
        table = engine.relation
        for i in range(len(table.shards)):
            table.shards[i] = FlakyShard(table.shards[i], rng, FAULT_RATE)
    return engine


def _serve(executor: QueryExecutor, queries, timeout=None) -> dict:
    """Serve the workload one query at a time, recording per-query latency
    and outcome; returns latency percentiles + goodput."""
    latencies, answers, failures = [], [], 0
    started = time.perf_counter()
    for query in queries:
        t0 = time.perf_counter()
        try:
            result = executor.run_one(query, fetch_measures=False, timeout=timeout)
            answers.append(result.record_ids)
        except ReproError:
            failures += 1
            answers.append(None)
        latencies.append(time.perf_counter() - t0)
    wall = time.perf_counter() - started
    lat = np.asarray(latencies)
    return {
        "latency_p50_ms": float(np.percentile(lat, 50) * 1e3),
        "latency_p99_ms": float(np.percentile(lat, 99) * 1e3),
        "queries": len(queries),
        "failures": failures,
        "success_rate": 1.0 - failures / len(queries),
        "goodput_qps": (len(queries) - failures) / wall,
        "_answers": answers,
    }


def _run_config(name: str, engine, queries, timeout=None, benchmark=None):
    with QueryExecutor(engine) as executor:
        def once():
            return _serve(executor, queries, timeout=timeout)

        stats = benchmark.pedantic(once, rounds=1, iterations=1)
    _answers[name] = stats.pop("_answers")
    _results[name] = stats


def test_baseline_healthy(benchmark):
    _, queries = _workload()
    engine = _engine()
    engine.use_resilience(None)
    _run_config("baseline", engine, queries, benchmark=benchmark)
    assert _results["baseline"]["failures"] == 0


def test_no_governance_under_faults(benchmark):
    _, queries = _workload()
    engine = _engine(fault_seed=23)
    # attempts=1, no breaker: the ungoverned failure mode (every fault is
    # terminal) without a breaker latching the whole run open.
    engine.use_resilience(
        ResiliencePolicy(attempts=1, breaker_threshold=10**9)
    )
    _run_config("no-governance", engine, queries, benchmark=benchmark)
    assert _results["no-governance"]["failures"] > 0, (
        "fault injection must actually fire for the comparison to mean anything"
    )


def test_governed_under_faults(benchmark):
    _, queries = _workload()
    engine = _engine(fault_seed=23)
    # attempts=4: a 5-fetch shard attempt fails with p ~0.23 at a 5%
    # per-fetch fault rate, so four tries push terminal failure under 1%.
    # backoff_base=0 retries immediately: the injected fault is
    # instantaneous, so any sleep would only charge the sub-millisecond
    # queries for contention that does not exist (production keeps the
    # default backoff for real I/O).
    engine.use_resilience(
        ResiliencePolicy(attempts=4, backoff_base=0.0, breaker_threshold=10**9)
    )
    _run_config("governed", engine, queries, timeout=TIMEOUT_S, benchmark=benchmark)


def test_zz_report(benchmark):
    """Write BENCH_resilience.json and assert the acceptance bar."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_results) == {"baseline", "no-governance", "governed"}

    # Differential guarantee: every query the governed server answered
    # matches the healthy baseline bit for bit (retries never corrupt).
    for governed, healthy in zip(_answers["governed"], _answers["baseline"]):
        if governed is not None:
            assert governed == healthy

    recovered = (
        _results["governed"]["goodput_qps"]
        / _results["no-governance"]["goodput_qps"]
    )
    payload = {
        "benchmark": "resilience",
        "corpus": {"kind": "NY", "n_records": N_RECORDS, "scale": SCALE},
        "workload": {
            "n_queries": N_QUERIES,
            "distinct_queries": POOL_SIZE,
            "query_size_edges": QUERY_SIZE,
            "distribution": f"zipf(s={ZIPF_S})",
            "shards": N_SHARDS,
        },
        "fault_rate_per_shard_touch": FAULT_RATE,
        "deadline_seconds": TIMEOUT_S,
        "configs": {
            name: {k: v for k, v in stats.items()}
            for name, stats in sorted(_results.items())
        },
        "goodput_recovered": recovered,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(f"\n=== Resilience: {N_QUERIES} zipf queries, {FAULT_RATE:.0%} shard faults ===")
    emit(f"{'config':>15} {'p50 ms':>9} {'p99 ms':>9} {'goodput q/s':>12} {'ok':>6}")
    for name in ("baseline", "no-governance", "governed"):
        s = _results[name]
        emit(
            f"{name:>15} {s['latency_p50_ms']:>9.2f} {s['latency_p99_ms']:>9.2f} "
            f"{s['goodput_qps']:>12.0f} {s['success_rate']:>6.1%}"
        )
    emit(f"goodput recovered by governance: {recovered:.2f}x")

    assert _results["governed"]["success_rate"] >= 0.95
    if SCALE >= 1.0:
        assert recovered >= 1.25, (
            f"governance should recover >=1.25x goodput, got {recovered:.2f}x"
        )

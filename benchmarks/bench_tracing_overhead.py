"""Tracer overhead: the Figure 3(a) workload with tracing off, disabled
hooks, and fully on.

The observability layer promises that *disabled* instrumentation is close
to free: every hook is a single ``self._tracer is None`` attribute check,
so serving with no tracer installed must stay within a few percent of the
pre-instrumentation engine.  Enabling a tracer buys the span trees at a
measured (small, bounded) cost.

Expected shape: ``untraced`` ~= ``metrics-only`` (both skip span work);
``traced`` pays a modest premium per query.
"""

from __future__ import annotations

import pytest

from _data import emit, engine_for, ny_corpus, scaled
from repro.obs import MetricsRegistry, Tracer
from repro.workloads import sample_path_queries

N_RECORDS = scaled(5000)
N_QUERIES = 20
QUERY_EDGES = 5

_results: dict[str, float] = {}


def _queries(corpus):
    return sample_path_queries(corpus, N_QUERIES, QUERY_EDGES, seed=3)


def _run(engine, queries):
    return sum(len(engine.query(q)) for q in queries)


def test_untraced(benchmark):
    corpus = ny_corpus(N_RECORDS)
    engine = engine_for(corpus)
    total = benchmark(_run, engine, _queries(corpus))
    _results["untraced"] = benchmark.stats.stats.mean
    assert total > 0


def test_metrics_only(benchmark):
    """Registry publishing on, tracer off: the common production setup."""
    corpus = ny_corpus(N_RECORDS)
    engine = engine_for(corpus)
    engine.use_metrics(MetricsRegistry())
    total = benchmark(_run, engine, _queries(corpus))
    _results["metrics-only"] = benchmark.stats.stats.mean
    assert total > 0


def test_traced(benchmark):
    corpus = ny_corpus(N_RECORDS)
    engine = engine_for(corpus)
    tracer = Tracer()
    engine.use_tracer(tracer)
    queries = _queries(corpus)
    total = benchmark(_run, engine, queries)
    _results["traced"] = benchmark.stats.stats.mean
    assert total > 0
    assert len(tracer.drain()) >= len(queries)


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(f"\n=== Tracer overhead: {N_QUERIES} queries over {N_RECORDS} records ===")
    base = _results.get("untraced")
    for mode in ["untraced", "metrics-only", "traced"]:
        mean = _results.get(mode, float("nan"))
        rel = f" ({100 * (mean / base - 1):+.1f}%)" if base and mode != "untraced" else ""
        emit(f"{mode:>14}: {mean:.5f} s{rel}")
    # Shape, not absolute seconds (these runs are milliseconds, so noise
    # is large): the fully traced mode is the most expensive, and enabled
    # instrumentation stays within one order of magnitude of off.
    if base and "traced" in _results:
        assert _results["traced"] <= base * 10

"""Figure 6: graph-query runtime vs view space budget, NY dataset.

Paper setup: full NY dataset, 100 uniform graph queries, x-axis = number
of materialized graph views as a % of the query count (100% = 100 views,
~2% extra space).  Time splits into a mandatory "fetch measures" part
(unaffected by views — they are indexes here) and the "rest" (structural
bitmap work), which views cut by up to 57%; total reduction up to 32%.

Scaled here: ``scaled(4000)`` NY records, 40 uniform 8-edge queries,
budgets 0/25/50/100%.
"""

from __future__ import annotations

import time

import pytest

from _data import emit, cached_engine, ny_corpus, scaled
from repro.workloads import sample_path_queries

N_RECORDS = scaled(4000)
N_QUERIES = 40
QUERY_EDGES = 8
BUDGET_PCTS = [0, 25, 50, 100]

_results: dict[int, dict] = {}


def _workload():
    return sample_path_queries(ny_corpus(N_RECORDS), N_QUERIES, QUERY_EDGES, seed=8)


@pytest.mark.parametrize("budget_pct", BUDGET_PCTS)
def test_budget_sweep(benchmark, budget_pct):
    engine = cached_engine("NY", N_RECORDS)
    queries = _workload()
    budget = round(budget_pct / 100 * N_QUERIES)
    engine.drop_all_views()
    if budget:
        engine.materialize_views_report = engine.materialize_graph_views(
            queries, budget=budget, method="closed"
        )

    def run():
        # Structural phase timed separately so the report can split the
        # mandatory measure-fetch cost from the part views improve.
        t0 = time.perf_counter()
        matches = [engine.query(q, fetch_measures=False) for q in queries]
        structural = time.perf_counter() - t0
        t0 = time.perf_counter()
        full = [engine.query(q) for q in queries]
        total_with_measures = time.perf_counter() - t0
        return structural, total_with_measures, sum(len(r) for r in full)

    structural, with_measures, n_matched = benchmark(run)
    engine.reset_stats()
    for q in queries:
        engine.query(q)
    _results[budget_pct] = {
        "structural_s": structural,
        "total_s": with_measures,
        "n_matched": n_matched,
        "bitmap_cols": engine.stats.structural_columns_fetched(),
        "measure_cols": engine.stats.measure_fetch_columns(),
        "extra_space_pct": 100
        * engine.relation.views_size_bytes()
        / engine.relation.base_size_bytes(),
    }
    engine.drop_all_views()


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(f"\n=== Figure 6: {N_QUERIES} uniform graph queries, NY ===")
    emit(
        f"{'budget%':>8} {'rest(s)':>9} {'total(s)':>9} {'bitmapcols':>11} "
        f"{'measurecols':>12} {'space+%':>8}"
    )
    for pct in BUDGET_PCTS:
        r = _results.get(pct)
        if not r:
            continue
        emit(
            f"{pct:>8} {r['structural_s']:9.4f} {r['total_s']:9.4f} "
            f"{r['bitmap_cols']:>11} {r['measure_cols']:>12} "
            f"{r['extra_space_pct']:8.2f}"
        )
    if 0 in _results and 100 in _results:
        # Views are indexes for plain graph queries: the structural column
        # count must drop; the measure fetch count must not change.
        assert _results[100]["bitmap_cols"] < _results[0]["bitmap_cols"]
        assert _results[100]["measure_cols"] == _results[0]["measure_cols"]
        assert _results[100]["n_matched"] == _results[0]["n_matched"]

"""Figure 3(b): query time vs query-graph size, four systems.

Paper setup: 1M NY records, query sizes 1..1000 edges.  The column store
*improves* as queries grow (fewer matching records means less measure
I/O, offsetting the extra bitmap ANDs) while the other systems degrade.

Scaled here: ``scaled(2000)`` records, query sizes 1/5/20/60 edges (the
walk-bounded equivalent of the paper's 1..1000 sweep; sizes past the max
record size yield empty answers, exactly as in the paper).
"""

from __future__ import annotations

import pytest

from _data import emit, baseline_for, ny_corpus, engine_for, scaled, union_queries

N_RECORDS = scaled(2000)
QUERY_SIZES = [1, 5, 20, 60]
N_QUERIES = 15

_results: dict[tuple[str, int], float] = {}


@pytest.mark.parametrize("n_edges", QUERY_SIZES)
def test_column_store(benchmark, n_edges):
    corpus = ny_corpus(N_RECORDS)
    engine = engine_for(corpus)
    queries = union_queries(corpus, N_QUERIES, n_edges, seed=4)
    benchmark(lambda: [engine.query(q) for q in queries])
    _results[("column-store", n_edges)] = benchmark.stats.stats.mean


@pytest.mark.parametrize("n_edges", QUERY_SIZES)
@pytest.mark.parametrize("system", ["row", "graph", "rdf"])
def test_baseline(benchmark, system, n_edges):
    corpus = ny_corpus(N_RECORDS)
    store = baseline_for(system, corpus)
    queries = union_queries(corpus, N_QUERIES, n_edges, seed=4)
    benchmark(lambda: [store.query(q) for q in queries])
    _results[(store.name, n_edges)] = benchmark.stats.stats.mean


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(f"\n=== Figure 3(b): {N_QUERIES} queries vs query size, time (s) ===")
    systems = ["column-store", "rdf-store", "graph-db", "row-store"]
    emit(f"{'edges':>6} " + " ".join(f"{s:>14}" for s in systems))
    for n in QUERY_SIZES:
        row = [f"{_results.get((s, n), float('nan')):14.4f}" for s in systems]
        emit(f"{n:>6} " + " ".join(row))
    # Paper shape: the column store does not degrade with query size the
    # way the row store does.
    small, large = QUERY_SIZES[0], QUERY_SIZES[-1]
    if ("column-store", small) in _results and ("row-store", small) in _results:
        column_ratio = _results[("column-store", large)] / _results[("column-store", small)]
        row_ratio = _results[("row-store", large)] / _results[("row-store", small)]
        assert column_ratio < row_ratio * 2, (
            "column store must scale with query size no worse than the row store"
        )

"""Parallel batch serving with the shared bitmap-conjunction cache.

The serving-layer perf trajectory: one dense corpus (the workload where
conjunctions are widest, so sharing them matters most), one skewed batch of
repeated dense queries — the shape of real query traffic, where a few hot
queries dominate (cf. the Zipf workloads of Figure 8) — served under four
configurations:

* ``serial-nocache``   — jobs=1, no cache: the engine as it was before the
  executor existed (the baseline);
* ``serial-cache``     — jobs=1 + warm cache: what conjunction sharing
  alone buys;
* ``parallel4-nocache`` — jobs=4, no cache: what threading alone buys
  (bounded by available cores; the numpy word-ops release the GIL);
* ``parallel4-cache``  — jobs=4 + warm cache: the full serving layer.

Emits ``benchmarks/BENCH_parallel_serving.json`` with per-config seconds
and queries/second plus the headline ``speedup`` of ``parallel4-cache``
over ``serial-nocache``; the report test asserts the acceptance bar
(>= 2x with warm cache) and that every configuration returns identical
answers.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from _data import SCALE, dense_corpus, emit, engine_for, scaled
from repro.exec import BitmapCache, QueryExecutor
from repro.workloads import sample_dense_queries

N_RECORDS = scaled(2000)
DENSITY_PCT = 10
POOL_SIZE = 24          # distinct hot queries
N_QUERIES = 192         # served per batch, zipf-repeated from the pool
ZIPF_S = 1.1
CACHE_MB = 64

CONFIGS = {
    "serial-nocache": dict(jobs=1, cached=False),
    "serial-cache": dict(jobs=1, cached=True),
    "parallel4-nocache": dict(jobs=4, cached=False),
    "parallel4-cache": dict(jobs=4, cached=True),
}

JSON_PATH = Path(__file__).parent / "BENCH_parallel_serving.json"

_results: dict[str, float] = {}
_answers: dict[str, list] = {}


def _workload():
    corpus = dense_corpus(N_RECORDS, DENSITY_PCT)
    pool = sample_dense_queries(corpus, POOL_SIZE, DENSITY_PCT / 100.0, seed=11)
    rng = np.random.default_rng(13)
    ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, ZIPF_S)
    weights /= weights.sum()
    chosen = rng.choice(len(pool), size=N_QUERIES, p=weights)
    return corpus, [pool[i] for i in chosen]


@pytest.mark.parametrize("config", list(CONFIGS))
def test_serving_config(benchmark, config):
    corpus, queries = _workload()
    engine = engine_for(corpus)
    spec = CONFIGS[config]
    cache = BitmapCache(CACHE_MB << 20) if spec["cached"] else None
    with QueryExecutor(engine, jobs=spec["jobs"], cache=cache) as executor:
        if cache is not None:
            executor.run_batch(queries, fetch_measures=False)  # warm the cache
        results = benchmark(
            lambda: executor.run_batch(queries, fetch_measures=False)
        )
    _results[config] = benchmark.stats.stats.mean
    _answers[config] = [r.record_ids for r in results]
    assert len(results) == N_QUERIES


def test_zz_report(benchmark):
    """Write BENCH_parallel_serving.json and assert the acceptance bar."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_results) == set(CONFIGS), "all configs must have run"
    # Differential guarantee: every configuration serves identical answers.
    baseline_answers = _answers["serial-nocache"]
    for config, answers in _answers.items():
        assert answers == baseline_answers, f"{config} diverged from baseline"

    payload = {
        "benchmark": "parallel_serving",
        "corpus": {
            "kind": "dense",
            "n_records": N_RECORDS,
            "density_pct": DENSITY_PCT,
            "scale": SCALE,
        },
        "workload": {
            "n_queries": N_QUERIES,
            "distinct_queries": POOL_SIZE,
            "distribution": f"zipf(s={ZIPF_S})",
        },
        "cache_mb": CACHE_MB,
        "configs": {
            config: {
                "jobs": CONFIGS[config]["jobs"],
                "cache": CONFIGS[config]["cached"],
                "seconds_per_batch": _results[config],
                "queries_per_second": N_QUERIES / _results[config],
            }
            for config in CONFIGS
        },
        "speedup_parallel4_cache_vs_serial_nocache": (
            _results["serial-nocache"] / _results["parallel4-cache"]
        ),
        "speedup_cache_only": (
            _results["serial-nocache"] / _results["serial-cache"]
        ),
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(f"\n=== Parallel serving: {N_QUERIES} zipf dense queries ===")
    emit(f"{'config':>20} {'s/batch':>10} {'q/s':>10}")
    for config in CONFIGS:
        emit(
            f"{config:>20} {_results[config]:>10.4f} "
            f"{N_QUERIES / _results[config]:>10.0f}"
        )
    speedup = payload["speedup_parallel4_cache_vs_serial_nocache"]
    emit(f"speedup (parallel4-cache vs serial-nocache): {speedup:.1f}x")
    emit(f"json written to {JSON_PATH.name}")
    assert speedup >= 2.0, (
        f"acceptance bar: warm-cache 4-job serving must be >= 2x the "
        f"serial no-cache baseline, got {speedup:.2f}x"
    )

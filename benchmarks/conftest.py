"""Benchmark-suite configuration.

Makes the ``benchmarks`` directory importable as a package for the shared
``_data`` helpers and prints the active scale factor once per session.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _data import SCALE  # noqa: E402


def pytest_report_header(config):
    return f"repro benchmark scale: {SCALE} (set REPRO_BENCH_SCALE to change)"

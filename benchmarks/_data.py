"""Shared data builders for the benchmark suite.

Every bench builds its inputs through the cached helpers here so corpora
are generated once per pytest session.  ``REPRO_BENCH_SCALE`` (float,
default 1.0) scales all record counts — raise it to stress the system,
lower it for a quick smoke pass.  The paper's full scale (320M / 100M
records on a dedicated server) is represented by these scaled corpora;
EXPERIMENTS.md compares *shapes*, not absolute seconds.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from repro.baselines import NativeGraphStore, RdfTripleStore, RowStore
from repro.core import GraphAnalyticsEngine
from repro.workloads import build_dataset, generate_dense_corpus, ny_road_network

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int, minimum: int = 50) -> int:
    return max(int(n * SCALE), minimum)


@lru_cache(maxsize=None)
def ny_corpus(n_records: int, seed: int = 0):
    return build_dataset("NY", n_records=n_records, seed=seed)


@lru_cache(maxsize=None)
def gnu_corpus(n_records: int, seed: int = 0):
    return build_dataset("GNU", n_records=n_records, seed=seed)


@lru_cache(maxsize=None)
def dense_corpus(n_records: int, density_pct: int, universe: int = 1000, seed: int = 0):
    return generate_dense_corpus(
        ny_road_network(max(universe, 4000), seed=7),
        n_records=n_records,
        density=density_pct / 100.0,
        universe_size=universe,
        seed=seed,
    )


def engine_for(corpus, partition_width: int = 1000) -> GraphAnalyticsEngine:
    engine = GraphAnalyticsEngine(partition_width=partition_width)
    engine.load_columnar(corpus.record_ids(), corpus.to_columnar())
    return engine


@lru_cache(maxsize=None)
def cached_engine(kind: str, n_records: int, seed: int = 0) -> GraphAnalyticsEngine:
    corpus = ny_corpus(n_records, seed) if kind == "NY" else gnu_corpus(n_records, seed)
    return engine_for(corpus)


def baseline_for(name: str, corpus):
    store = {"row": RowStore, "graph": NativeGraphStore, "rdf": RdfTripleStore}[name]()
    store.load_records(corpus.to_records())
    return store


@lru_cache(maxsize=None)
def cached_baseline(name: str, kind: str, n_records: int, seed: int = 0):
    corpus = ny_corpus(n_records, seed) if kind == "NY" else gnu_corpus(n_records, seed)
    return baseline_for(name, corpus)


def union_queries(corpus, n_queries: int, n_edges: int, seed: int = 0):
    """Graph queries of exactly ``n_edges`` edges, built by unioning pool
    paths when a single walk is shorter than the target (used for the
    Figure 3(b) query-size sweep, which goes past record sizes)."""
    from repro.core import GraphQuery
    from repro.workloads import sample_path_queries

    per_path = min(n_edges, 30)
    parts_needed = max(1, -(-n_edges // per_path))
    stacked = sample_path_queries(
        corpus, n_queries * parts_needed, per_path, seed=seed
    )
    out = []
    for i in range(n_queries):
        elements: set = set()
        for part in stacked[i * parts_needed : (i + 1) * parts_needed]:
            elements |= part.elements
            if len(elements) >= n_edges:
                break
        out.append(GraphQuery(sorted(elements, key=repr)[:n_edges]))
    return out


RESULTS_PATH = Path(__file__).parent / "results.txt"


def emit(line: str = "") -> None:
    """Print a report line and append it to benchmarks/results.txt so the
    series survive pytest's output capture."""
    print(line)
    with open(RESULTS_PATH, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")

"""Shard-parallel execution: the Figure 3(a) workload across shard counts.

The sharding perf trajectory: the Figure 3(a) serving shape (NY corpus,
5-edge path queries, zipf-repeated so a few hot queries dominate) is run
with the master relation split into 1 / 2 / 4 / 8 record-range shards,
each under two servers:

* ``serial-sK``    — plain ``engine.query`` loop, no cache: per-shard
  conjunctions run sequentially and merge by concatenation (the
  correctness path);
* ``executor4-sK`` — ``QueryExecutor(jobs=4)`` with a warm shard-keyed
  cache: batch fan-out plus the executor's dedicated shard pool, the
  full serving stack;
* ``process4-sK``  — ``QueryExecutor(exec_mode="process", workers=4)``
  with the same warm cache: shard conjunctions evaluated out-of-process
  by the persistent worker pool over zero-copy mmap storage.

Emits ``benchmarks/BENCH_shard_scaling.json`` with per-config seconds and
queries/second plus the headlines ``speedup_at_4_shards`` (executor over
the serial loop at the same shard count), ``process_speedup_at_4_shards``
(process pool over serial) and ``process_over_thread_at_4_shards``; the
report test asserts the acceptance bars (executor >= 1.5x serial, process
>= 2.5x serial and >= 1.2x thread at 4 shards, gated on a full-scale run)
and that every config returns answers identical to the unsharded baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from _data import SCALE, emit, ny_corpus, scaled
from repro.core import GraphAnalyticsEngine
from repro.exec import BitmapCache, QueryExecutor
from repro.io import ingest_records
from repro.workloads import sample_path_queries

N_RECORDS = scaled(20000)
QUERY_SIZE = 5          # edges per path query, the Figure 3(a) shape
POOL_SIZE = 16          # distinct hot queries
N_QUERIES = 128         # served per batch, zipf-repeated from the pool
ZIPF_S = 1.1
CACHE_MB = 64
SHARD_COUNTS = [1, 2, 4, 8]

JSON_PATH = Path(__file__).parent / "BENCH_shard_scaling.json"

_results: dict[str, float] = {}
_answers: dict[str, list] = {}


def _workload():
    corpus = ny_corpus(N_RECORDS)
    pool = sample_path_queries(corpus, POOL_SIZE, QUERY_SIZE, seed=17)
    rng = np.random.default_rng(19)
    ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, ZIPF_S)
    weights /= weights.sum()
    chosen = rng.choice(len(pool), size=N_QUERIES, p=weights)
    return corpus, [pool[i] for i in chosen]


def _sharded_engine(shards: int) -> GraphAnalyticsEngine:
    corpus, _ = _workload()
    engine = GraphAnalyticsEngine(shards=shards)
    ingest_records(engine, corpus.to_records(), jobs=shards)
    return engine


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_serial_shards(benchmark, shards):
    _, queries = _workload()
    engine = _sharded_engine(shards)
    results = benchmark(
        lambda: [engine.query(q, fetch_measures=False) for q in queries]
    )
    _results[f"serial-s{shards}"] = benchmark.stats.stats.mean
    _answers[f"serial-s{shards}"] = [r.record_ids for r in results]
    assert len(results) == N_QUERIES


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_executor_shards(benchmark, shards):
    _, queries = _workload()
    engine = _sharded_engine(shards)
    cache = BitmapCache(CACHE_MB << 20)
    with QueryExecutor(engine, jobs=4, cache=cache) as executor:
        executor.run_batch(queries, fetch_measures=False)  # warm the cache
        results = benchmark(
            lambda: executor.run_batch(queries, fetch_measures=False)
        )
    _results[f"executor4-s{shards}"] = benchmark.stats.stats.mean
    _answers[f"executor4-s{shards}"] = [r.record_ids for r in results]
    assert len(results) == N_QUERIES


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_process_shards(benchmark, shards):
    _, queries = _workload()
    engine = _sharded_engine(shards)
    cache = BitmapCache(CACHE_MB << 20)
    with QueryExecutor(
        engine, jobs=4, cache=cache, exec_mode="process", workers=4
    ) as executor:
        executor.run_batch(queries, fetch_measures=False)  # warm + attach
        results = benchmark(
            lambda: executor.run_batch(queries, fetch_measures=False)
        )
    _results[f"process4-s{shards}"] = benchmark.stats.stats.mean
    _answers[f"process4-s{shards}"] = [r.record_ids for r in results]
    assert len(results) == N_QUERIES


def test_zz_report(benchmark):
    """Write BENCH_shard_scaling.json and assert the acceptance bar."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    expected_configs = {
        f"{mode}-s{k}"
        for mode in ("serial", "executor4", "process4")
        for k in SHARD_COUNTS
    }
    assert set(_results) == expected_configs, "all configs must have run"
    # Differential guarantee: sharding never changes an answer.
    baseline_answers = _answers["serial-s1"]
    for config, answers in _answers.items():
        assert answers == baseline_answers, f"{config} diverged from unsharded"

    payload = {
        "benchmark": "shard_scaling",
        "corpus": {"kind": "NY", "n_records": N_RECORDS, "scale": SCALE},
        "workload": {
            "n_queries": N_QUERIES,
            "distinct_queries": POOL_SIZE,
            "query_size_edges": QUERY_SIZE,
            "distribution": f"zipf(s={ZIPF_S})",
        },
        "cache_mb": CACHE_MB,
        "configs": {
            config: {
                "seconds_per_batch": _results[config],
                "queries_per_second": N_QUERIES / _results[config],
            }
            for config in sorted(_results)
        },
        "speedup_at_4_shards": _results["serial-s4"] / _results["executor4-s4"],
        "process_speedup_at_4_shards": (
            _results["serial-s4"] / _results["process4-s4"]
        ),
        "process_over_thread_at_4_shards": (
            _results["executor4-s4"] / _results["process4-s4"]
        ),
        "speedup_by_shards": {
            str(k): _results[f"serial-s{k}"] / _results[f"executor4-s{k}"]
            for k in SHARD_COUNTS
        },
        "process_speedup_by_shards": {
            str(k): _results[f"serial-s{k}"] / _results[f"process4-s{k}"]
            for k in SHARD_COUNTS
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(f"\n=== Shard scaling: {N_QUERIES} zipf path queries, NY ===")
    emit(f"{'config':>16} {'s/batch':>10} {'q/s':>10}")
    for k in SHARD_COUNTS:
        for mode in ("serial", "executor4", "process4"):
            config = f"{mode}-s{k}"
            emit(
                f"{config:>16} {_results[config]:>10.4f} "
                f"{N_QUERIES / _results[config]:>10.0f}"
            )
    speedup = payload["speedup_at_4_shards"]
    proc_speedup = payload["process_speedup_at_4_shards"]
    proc_over_thread = payload["process_over_thread_at_4_shards"]
    emit(f"speedup at 4 shards (executor4 vs serial): {speedup:.1f}x")
    emit(f"speedup at 4 shards (process4 vs serial): {proc_speedup:.1f}x")
    emit(f"process over thread at 4 shards: {proc_over_thread:.2f}x")
    emit(f"json written to {JSON_PATH.name}")
    if SCALE >= 1.0:
        assert speedup >= 1.5, (
            f"acceptance bar: warm-cache executor serving at 4 shards must "
            f"be >= 1.5x the serial loop, got {speedup:.2f}x"
        )
        assert proc_speedup >= 2.5, (
            f"acceptance bar: process-parallel serving at 4 shards must be "
            f">= 2.5x the serial loop, got {proc_speedup:.2f}x"
        )
        assert proc_over_thread >= 1.2, (
            f"acceptance bar: the process pool must beat thread-mode "
            f"serving by >= 1.2x at 4 shards, got {proc_over_thread:.2f}x"
        )

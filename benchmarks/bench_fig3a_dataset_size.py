"""Figure 3(a): query time vs dataset size, four systems.

Paper setup: 100 uniform graph queries over 1/5/10M-record subsets of NY;
the column store is orders of magnitude faster than the row store and
clearly faster than the graph/RDF stores, and all systems scale roughly
linearly in dataset size.

Scaled here to scaled(1000)/scaled(5000)/scaled(10000) records and 20
five-edge queries.
Expected shape: column < rdf < graph << row at every size.
"""

from __future__ import annotations

import pytest

from _data import emit, baseline_for, engine_for, ny_corpus, scaled
from repro.workloads import sample_path_queries

SIZES = [scaled(1000), scaled(5000), scaled(10000)]
N_QUERIES = 20
QUERY_EDGES = 5

_results: dict[tuple[str, int], float] = {}


def _queries(corpus):
    return sample_path_queries(corpus, N_QUERIES, QUERY_EDGES, seed=3)


def _run_engine(engine, queries):
    return sum(len(engine.query(q)) for q in queries)


def _run_baseline(store, queries):
    return sum(len(store.query(q)) for q in queries)


@pytest.mark.parametrize("n_records", SIZES)
def test_column_store(benchmark, n_records):
    corpus = ny_corpus(n_records)
    engine = engine_for(corpus)
    queries = _queries(corpus)
    total = benchmark(_run_engine, engine, queries)
    _results[("column-store", n_records)] = benchmark.stats.stats.mean
    assert total > 0


@pytest.mark.parametrize("n_records", SIZES)
@pytest.mark.parametrize("system", ["row", "graph", "rdf"])
def test_baseline(benchmark, system, n_records):
    corpus = ny_corpus(n_records)
    store = baseline_for(system, corpus)
    queries = _queries(corpus)
    total = benchmark(_run_baseline, store, queries)
    _results[(store.name, n_records)] = benchmark.stats.stats.mean
    assert total > 0


def test_zz_report(benchmark):
    """Print the Figure 3(a) series and assert the paper's ordering."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(f"\n=== Figure 3(a): {N_QUERIES} uniform queries, time (s) ===")
    systems = ["column-store", "rdf-store", "graph-db", "row-store"]
    emit(f"{'records':>10} " + " ".join(f"{s:>14}" for s in systems))
    for n in SIZES:
        row = [f"{_results.get((s, n), float('nan')):14.4f}" for s in systems]
        emit(f"{n:>10} " + " ".join(row))
    # Paper shape: at the larger sizes the column store wins outright; at
    # tiny scales fixed vectorization overhead can mask the gap.
    for n in SIZES[1:]:
        if all((s, n) in _results for s in systems):
            assert _results[("column-store", n)] < _results[("row-store", n)], (
                "paper shape: column store beats row store"
            )

"""Ablation: vertical partition width (Section 6.1's 1000-column choice).

Sweeps the sub-relation width over the same data and workload and reports
query time and partitions joined per query.  Narrow partitions force more
recid re-joins; a single huge partition avoids them entirely (at the cost,
on a real system, of wider row reconstruction — our simulation charges
only the join side, so the curve flattens above the query's spread).
"""

from __future__ import annotations

import pytest

from _data import emit, dense_corpus, scaled
from repro.core import GraphAnalyticsEngine
from repro.workloads import sample_dense_queries

N_RECORDS = scaled(300)
UNIVERSE = 4000
WIDTHS = [100, 1000, 10000]
N_QUERIES = 8

_results: dict[int, dict] = {}


@pytest.mark.parametrize("width", WIDTHS)
def test_width(benchmark, width):
    corpus = dense_corpus(N_RECORDS, 10, universe=UNIVERSE)
    engine = GraphAnalyticsEngine(partition_width=width)
    engine.load_columnar(corpus.record_ids(), corpus.to_columnar())
    queries = sample_dense_queries(corpus, N_QUERIES, 0.10, seed=23)
    benchmark(lambda: [engine.query(q) for q in queries])
    engine.reset_stats()
    for q in queries:
        engine.query(q)
    _results[width] = {
        "time_s": benchmark.stats.stats.mean,
        "partitions_joined": engine.stats.partitions_joined,
        "n_partitions": engine.relation.n_partitions,
    }


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(f"\n=== Ablation: partition width ({UNIVERSE}-edge universe) ===")
    emit(f"{'width':>7} {'parts':>6} {'joined':>8} {'time(s)':>10}")
    for width in WIDTHS:
        r = _results.get(width)
        if not r:
            continue
        emit(f"{width:>7} {r['n_partitions']:>6} {r['partitions_joined']:>8} "
              f"{r['time_s']:10.4f}")
    if all(w in _results for w in WIDTHS):
        # More partitions must mean more join work.
        assert (
            _results[100]["partitions_joined"]
            > _results[1000]["partitions_joined"]
            >= _results[10000]["partitions_joined"]
        )

"""Figure 9: number of candidate views vs minimum support, NY dataset.

Paper shape: candidate counts (graph and aggregate views, uniform and
Zipf workloads) drop sharply as minSup rises from ~0 and flatten out;
candidate generation runs in well under a second either way (vs 1.5h for
gIndex's mining, Section 7.3).
"""

from __future__ import annotations

import pytest

from _data import emit, ny_corpus, scaled
from repro.core import closed_candidates
from repro.core.candidates import candidate_aggregate_paths
from repro.workloads import as_aggregate_queries, sample_path_queries

N_RECORDS = scaled(1500)
N_QUERIES = 60
QUERY_EDGES = 8
MIN_SUPPORTS_PCT = [2, 5, 10, 25, 50]

_counts: dict[tuple[str, str, int], int] = {}


def _queries(distribution):
    return sample_path_queries(
        ny_corpus(N_RECORDS), N_QUERIES, QUERY_EDGES,
        distribution=distribution, zipf_s=1.4, seed=12,
    )


@pytest.mark.parametrize("distribution", ["uniform", "zipf"])
def test_graph_view_candidates(benchmark, distribution):
    queries = _queries(distribution)

    def generate():
        for pct in MIN_SUPPORTS_PCT:
            min_support = max(1, round(pct / 100 * N_QUERIES))
            cands = closed_candidates(queries, min_support=min_support)
            _counts[("graph", distribution, pct)] = len(cands)

    benchmark.pedantic(generate, rounds=1, iterations=1)


@pytest.mark.parametrize("distribution", ["uniform", "zipf"])
def test_aggregate_view_candidates(benchmark, distribution):
    workload = as_aggregate_queries(_queries(distribution), "sum")

    def generate():
        paths = candidate_aggregate_paths(workload, max_length=QUERY_EDGES)
        for pct in MIN_SUPPORTS_PCT:
            min_support = max(1, round(pct / 100 * N_QUERIES))
            supported = [
                p
                for p in paths
                if sum(
                    1
                    for q in workload
                    if set(p.edges()) <= q.query.elements
                )
                >= min_support
            ]
            _counts[("aggregate", distribution, pct)] = len(supported)

    benchmark.pedantic(generate, rounds=1, iterations=1)


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(f"\n=== Figure 9: candidate views vs minSup ({N_QUERIES} queries, NY) ===")
    series = [
        ("graph", "zipf"), ("graph", "uniform"),
        ("aggregate", "zipf"), ("aggregate", "uniform"),
    ]
    emit(f"{'minSup%':>8} " + " ".join(f"{a}-{b:>7}" for a, b in series))
    for pct in MIN_SUPPORTS_PCT:
        cells = [f"{_counts.get((a, b, pct), 0):>12}" for a, b in series]
        emit(f"{pct:>8} " + " ".join(cells))
    # Paper shape: counts fall monotonically as minSup rises.
    for key in series:
        counts = [_counts.get((*key, pct), 0) for pct in MIN_SUPPORTS_PCT]
        if any(counts):
            assert all(a >= b for a, b in zip(counts, counts[1:])), key

"""Figure 11: gIndex fragments vs aggregate views, uniform aggregate queries.

Same setup as Figure 10 but with SUM path-aggregation queries; the paper
reports views up to 6× faster than gIndexQ here, because fragments only
index structure while aggregate views also eliminate measure retrieval
through pre-aggregation.
"""

from __future__ import annotations

import pytest

from _data import emit, cached_engine, ny_corpus, scaled
from repro.gindex import index_fragments, mine_frequent_fragments, select_discriminative_fragments
from repro.workloads import as_aggregate_queries, sample_path_queries

N_RECORDS = scaled(1500)
N_QUERIES = 20
QUERY_EDGES = 6
FEATURE_PCTS = [0, 50, 100]

_results: dict[tuple[str, int], float] = {}
_columns: dict[tuple[str, int], int] = {}


def _workload():
    return as_aggregate_queries(
        sample_path_queries(ny_corpus(N_RECORDS), N_QUERIES, QUERY_EDGES, seed=14),
        "sum",
    )


def _sample(engine, workload, max_rows=400):
    rows = []
    for q in workload:
        rows.extend(engine.query(q.query, fetch_measures=False).rows.tolist())
    rows = list(dict.fromkeys(rows))[:max_rows]
    corpus = ny_corpus(N_RECORDS)
    return [
        frozenset(corpus.universe[i] for i in corpus.record_edges[r].tolist())
        for r in rows
    ]


@pytest.mark.parametrize("pct", FEATURE_PCTS)
@pytest.mark.parametrize("regime", ["gIndexQ", "views"])
def test_feature_sweep(benchmark, regime, pct):
    engine = cached_engine("NY", N_RECORDS)
    workload = _workload()
    engine.drop_all_views()
    n_features = round(pct / 100 * N_QUERIES)
    if n_features:
        if regime == "views":
            engine.materialize_aggregate_views(workload, budget=n_features)
        else:
            sample = _sample(engine, workload)
            fragments = mine_frequent_fragments(
                sample, min_support=max(2, len(sample) // 50), max_size=3,
                max_fragments=3000,
            )
            selected = select_discriminative_fragments(
                fragments, sample, gamma_min=1.2, max_selected=n_features
            )
            index_fragments(engine, selected, prefix=f"f{pct}")
    benchmark(lambda: [engine.aggregate(q) for q in workload])
    _results[(regime, pct)] = benchmark.stats.stats.mean
    engine.reset_stats()
    for q in workload:
        engine.aggregate(q)
    _columns[(regime, pct)] = engine.stats.total_columns_fetched()
    engine.drop_all_views()


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(f"\n=== Figure 11: fragments vs views, {N_QUERIES} SUM queries ===")
    regimes = ["gIndexQ", "views"]
    emit(f"{'features%':>10} " + " ".join(f"{r:>12} {r + '-cols':>14}" for r in regimes))
    for pct in FEATURE_PCTS:
        cells = []
        for r in regimes:
            cells.append(f"{_results.get((r, pct), float('nan')):12.4f}")
            cells.append(f"{_columns.get((r, pct), 0):>14}")
        emit(f"{pct:>10} " + " ".join(cells))
    # Paper shape: for aggregation, views clearly beat fragments (they
    # eliminate measure fetches, fragments cannot).
    full = FEATURE_PCTS[-1]
    if all((r, full) in _columns for r in regimes):
        assert _columns[("views", full)] < _columns[("gIndexQ", full)]

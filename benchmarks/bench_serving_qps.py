"""Network serving throughput and tail latency under multi-client load.

A live ``repro.serve`` daemon (real sockets, HTTP framing, chunked
NDJSON) serves the same zipf path-query workload in these
configurations:

* ``cold-1client`` / ``warm-1client`` — one client against a fresh /
  warmed executor: the cache-miss floor and the warm latency baseline;
* ``overload-{2x,6x}-ungoverned`` — 2x and 6x as many back-to-back
  clients as the admission gate would admit, with no gate installed:
  every request is accepted and queues, so the served p99 grows roughly
  linearly with the client count;
* ``overload-{2x,6x}-governed`` — the same client storms behind a shared
  :class:`AdmissionController` (the admission slot spans each request's
  whole lifetime, execution and streaming): excess load is shed with
  429 + ``Retry-After`` instead of queued, so the p99 of *served*
  requests stays near the 2x level as the storm grows instead of
  blowing up with it.

Emits ``benchmarks/BENCH_serving_qps.json`` with per-config QPS,
p50/p99 latency, and rejection counts, plus the headline p99 growth
ratios from 2x to 6x overload.  The report test asserts the acceptance
bar (gated on a full-scale run): the gate actually sheds at 2x
overload, and at 6x the governed served-request p99 stays below the
ungoverned one — bounded tail under governance, unbounded queueing
without it.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np

from _data import SCALE, emit, ny_corpus, scaled
from repro.core import GraphAnalyticsEngine
from repro.exec import QueryExecutor
from repro.io import ingest_records
from repro.resilience import AdmissionController
from repro.serve import ServeClient, ServeHTTPError, start_in_thread
from repro.serve.server import ServeConfig
from repro.serve.tenants import TenantGate, TenantPolicy
from repro.workloads import sample_path_queries

N_RECORDS = scaled(24000)
QUERY_SIZE = 2           # short paths -> large answer sets (~500 rows each)
POOL_SIZE = 16
N_QUERIES = 288          # total wire requests per configuration
ZIPF_S = 1.1
N_SHARDS = 4
GATE_MAX_INFLIGHT = 8    # admitted concurrency under governance
OVERLOADS = {"2x": GATE_MAX_INFLIGHT * 2, "6x": GATE_MAX_INFLIGHT * 6}
# The asyncio->engine bridge is deliberately wider than any storm: the
# gate is acquired *in* a bridge thread, so a bridge narrower than the
# client count would queue requests before admission ever saw them.
# Capacity must be governed by the gate, not by thread starvation.
ENGINE_THREADS = 64
GATE_MAX_WAIT_S = 0.002  # shed fast: overload is rejected, not queued

JSON_PATH = Path(__file__).parent / "BENCH_serving_qps.json"

_results: dict[str, dict] = {}


def _workload():
    corpus = ny_corpus(N_RECORDS)
    pool = sample_path_queries(corpus, POOL_SIZE, QUERY_SIZE, seed=31)
    rng = np.random.default_rng(33)
    ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, ZIPF_S)
    weights /= weights.sum()
    chosen = rng.choice(len(pool), size=N_QUERIES, p=weights)
    # Full rows (measures fetched and streamed): a request costs the
    # whole pipeline — engine fold, measure gather, NDJSON out.  Short
    # (2-edge) queries keep answer sets in the hundreds of rows, so a
    # request costs several milliseconds and queueing delay — the thing
    # admission control bounds — dominates scheduler jitter.
    payloads = [
        {"elements": [list(e) for e in sorted(pool[i].elements, key=repr)]}
        for i in chosen
    ]
    return corpus, payloads


def _executor(corpus) -> QueryExecutor:
    engine = GraphAnalyticsEngine(shards=N_SHARDS)
    ingest_records(engine, corpus.to_records(), jobs=N_SHARDS)
    return QueryExecutor(engine, jobs=4, cache_mb=64)


def _drive(address, payloads, n_clients: int) -> dict:
    """Fire the workload from ``n_clients`` threads (each with its own
    socket, round-robin slice, back-to-back requests); returns QPS and
    latency percentiles over the served requests."""
    slices = [payloads[i::n_clients] for i in range(n_clients)]
    latencies: list[list[float]] = [[] for _ in range(n_clients)]
    rejected = [0] * n_clients
    failures: list = []
    barrier = threading.Barrier(n_clients + 1)

    def client(idx):
        try:
            with ServeClient(*address) as conn:
                barrier.wait()
                for payload in slices[idx]:
                    t0 = time.perf_counter()
                    try:
                        result = conn.query(payload)
                        assert result.record_ids is not None
                        latencies[idx].append(time.perf_counter() - t0)
                    except ServeHTTPError as err:
                        if err.status != 429:
                            raise
                        rejected[idx] += 1
        except Exception as exc:
            failures.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(n_clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join(timeout=300)
    wall = time.perf_counter() - started
    assert not failures, failures[0]
    lat = np.asarray([v for per in latencies for v in per])
    served = int(lat.size)
    shed = int(sum(rejected))
    assert served + shed == len(payloads)
    return {
        "clients": n_clients,
        "requests": len(payloads),
        "served": served,
        "rejected_429": shed,
        "qps": served / wall,
        "latency_p50_ms": float(np.percentile(lat, 50) * 1e3),
        "latency_p99_ms": float(np.percentile(lat, 99) * 1e3),
    }


def test_single_client_cold_then_warm(benchmark):
    corpus, payloads = _workload()
    with _executor(corpus) as executor:
        handle = start_in_thread(
            executor, config=ServeConfig(engine_threads=ENGINE_THREADS)
        )
        try:
            def both():
                cold = _drive(handle.address, payloads, n_clients=1)
                warm = _drive(handle.address, payloads, n_clients=1)
                return cold, warm

            cold, warm = benchmark.pedantic(both, rounds=1, iterations=1)
            _results["cold-1client"] = cold
            _results["warm-1client"] = warm
        finally:
            handle.stop()


def test_overload_ungoverned(benchmark):
    corpus, payloads = _workload()
    with _executor(corpus) as executor:
        handle = start_in_thread(
            executor, config=ServeConfig(engine_threads=ENGINE_THREADS)
        )
        try:
            _drive(handle.address, payloads, n_clients=1)  # warm the cache

            def storms():
                return {
                    label: _drive(handle.address, payloads, clients)
                    for label, clients in OVERLOADS.items()
                }

            for label, stats in benchmark.pedantic(
                storms, rounds=1, iterations=1
            ).items():
                _results[f"overload-{label}-ungoverned"] = stats
                assert stats["rejected_429"] == 0
        finally:
            handle.stop()


def test_overload_governed(benchmark):
    corpus, payloads = _workload()
    gate = TenantGate(
        shared=AdmissionController(
            max_inflight=GATE_MAX_INFLIGHT, max_wait_s=GATE_MAX_WAIT_S
        ),
        policy=TenantPolicy(),
    )
    with _executor(corpus) as executor:
        handle = start_in_thread(
            executor,
            gate=gate,
            config=ServeConfig(engine_threads=ENGINE_THREADS),
        )
        try:
            _drive(handle.address, payloads, n_clients=1)  # warm the cache

            def storms():
                return {
                    label: _drive(handle.address, payloads, clients)
                    for label, clients in OVERLOADS.items()
                }

            for label, stats in benchmark.pedantic(
                storms, rounds=1, iterations=1
            ).items():
                _results[f"overload-{label}-governed"] = stats
        finally:
            handle.stop()
    assert gate.inflight() == 0


def test_zz_report(benchmark):
    """Write BENCH_serving_qps.json and assert the acceptance bar."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    expected = {"cold-1client", "warm-1client"} | {
        f"overload-{label}-{mode}"
        for label in OVERLOADS
        for mode in ("ungoverned", "governed")
    }
    assert set(_results) == expected

    def p99(name):
        return _results[name]["latency_p99_ms"]

    growth = {
        mode: p99(f"overload-6x-{mode}") / p99(f"overload-2x-{mode}")
        for mode in ("ungoverned", "governed")
    }
    payload = {
        "benchmark": "serving_qps",
        "corpus": {"kind": "NY", "n_records": N_RECORDS, "scale": SCALE},
        "workload": {
            "n_requests": N_QUERIES,
            "distinct_queries": POOL_SIZE,
            "query_size_edges": QUERY_SIZE,
            "distribution": f"zipf(s={ZIPF_S})",
            "shards": N_SHARDS,
        },
        "daemon": {
            "engine_threads": ENGINE_THREADS,
            "gate_max_inflight": GATE_MAX_INFLIGHT,
            "gate_max_wait_s": GATE_MAX_WAIT_S,
            "overload_clients": {k: v for k, v in OVERLOADS.items()},
        },
        "configs": {name: stats for name, stats in sorted(_results.items())},
        "p99_growth_2x_to_6x": growth,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        f"\n=== Serving QPS: {N_QUERIES} zipf wire requests, "
        f"gate admits {GATE_MAX_INFLIGHT} ==="
    )
    emit(
        f"{'config':>25} {'clients':>8} {'p50 ms':>9} {'p99 ms':>9} "
        f"{'qps':>8} {'429s':>6}"
    )
    order = ["cold-1client", "warm-1client"] + [
        f"overload-{label}-{mode}"
        for label in OVERLOADS
        for mode in ("ungoverned", "governed")
    ]
    for name in order:
        s = _results[name]
        emit(
            f"{name:>25} {s['clients']:>8} {s['latency_p50_ms']:>9.2f} "
            f"{s['latency_p99_ms']:>9.2f} {s['qps']:>8.0f} "
            f"{s['rejected_429']:>6}"
        )
    emit(
        f"p99 growth 2x->6x overload: ungoverned "
        f"{growth['ungoverned']:.2f}x, governed {growth['governed']:.2f}x"
    )

    # The gate must actually shed at 2x overload — otherwise the governed
    # numbers describe an idle gate, not admission control.
    assert _results["overload-2x-governed"]["rejected_429"] > 0
    if SCALE >= 1.0:
        # Bounded tail under governance: as the storm triples, shedding
        # keeps the served p99 below what unbounded queueing produces.
        assert p99("overload-6x-governed") < p99("overload-6x-ungoverned"), (
            f"governed p99 {p99('overload-6x-governed'):.1f}ms should stay "
            f"below ungoverned {p99('overload-6x-ungoverned'):.1f}ms at 6x"
        )
        assert growth["governed"] < growth["ungoverned"], (
            f"governed p99 growth {growth['governed']:.2f}x should stay "
            f"below ungoverned {growth['ungoverned']:.2f}x"
        )

"""Ablation: view-selection strategy.

Compares the paper's greedy extended-set-cover selection against two
simpler strategies under the same budget:

* ``top-frequency`` — materialize the most frequent whole queries;
* ``random`` — materialize random candidates.

Metric: total structural columns fetched by the workload after
materialization (the paper's cost model).  The greedy chooser should never
lose, and wins when queries share subgraphs it can cover once.
"""

from __future__ import annotations

import numpy as np
import pytest

from _data import emit, cached_engine, ny_corpus, scaled
from repro.core import closed_candidates, greedy_select_views
from repro.workloads import sample_path_queries

N_RECORDS = scaled(1500)
N_QUERIES = 40
QUERY_EDGES = 8
BUDGET = 10

_columns: dict[str, int] = {}


def _workload():
    return sample_path_queries(
        ny_corpus(N_RECORDS), N_QUERIES, QUERY_EDGES,
        distribution="zipf", zipf_s=1.4, seed=22,
    )


def _measure(engine, queries):
    engine.reset_stats()
    for q in queries:
        engine.query(q, fetch_measures=False)
    return engine.stats.structural_columns_fetched()


def _select(strategy, queries):
    candidates = closed_candidates(queries, min_support=1)
    if strategy == "greedy":
        keyed = {i: c for i, c in enumerate(candidates)}
        picked = greedy_select_views(
            [q.elements for q in queries], keyed, budget=BUDGET
        ).selected
        return [keyed[k] for k in picked]
    if strategy == "top-frequency":
        by_frequency: dict[frozenset, int] = {}
        for q in queries:
            by_frequency[q.elements] = by_frequency.get(q.elements, 0) + 1
        ranked = sorted(by_frequency, key=by_frequency.get, reverse=True)
        return ranked[:BUDGET]
    if strategy == "random":
        rng = np.random.default_rng(7)
        picks = rng.choice(len(candidates), size=min(BUDGET, len(candidates)),
                           replace=False)
        return [candidates[i] for i in picks]
    raise ValueError(strategy)


@pytest.mark.parametrize("strategy", ["greedy", "top-frequency", "random"])
def test_strategy(benchmark, strategy):
    engine = cached_engine("NY", N_RECORDS)
    queries = _workload()
    engine.drop_all_views()
    for i, elements in enumerate(_select(strategy, queries)):
        engine.add_graph_view(elements, name=f"{strategy}{i}")
    benchmark(lambda: [engine.query(q, fetch_measures=False) for q in queries])
    _columns[strategy] = _measure(engine, queries)
    engine.drop_all_views()


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    engine = cached_engine("NY", N_RECORDS)
    engine.drop_all_views()
    baseline = _measure(engine, _workload())
    emit(f"\n=== Ablation: selection strategy (budget {BUDGET}) ===")
    emit(f"  {'no views':>14}: {baseline} structural columns")
    for strategy, cols in sorted(_columns.items()):
        emit(f"  {strategy:>14}: {cols} structural columns "
              f"({100 * (1 - cols / baseline):.0f}% saved)")
    if len(_columns) == 3:
        assert _columns["greedy"] <= _columns["random"]
        assert _columns["greedy"] <= _columns["top-frequency"]
        assert _columns["greedy"] < baseline

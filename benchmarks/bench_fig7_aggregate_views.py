"""Figure 7: aggregate-query runtime vs view space budget, GNU dataset.

Paper setup: 100 uniform path-aggregation (SUM) queries on GNU; aggregate
graph views replace whole path segments' measure columns with one ``mp``
column each, so *both* parts of the time breakdown shrink — up to 89%
total reduction at a 100% budget (~10% extra space).

Scaled here: ``scaled(2500)`` GNU records, 40 uniform 8-edge SUM queries,
budgets 0/25/50/100%.
"""

from __future__ import annotations

import pytest

from _data import emit, cached_engine, gnu_corpus, scaled
from repro.workloads import as_aggregate_queries, sample_path_queries

N_RECORDS = scaled(2500)
N_QUERIES = 40
QUERY_EDGES = 8
BUDGET_PCTS = [0, 25, 50, 100]

_results: dict[int, dict] = {}


def _workload():
    return as_aggregate_queries(
        sample_path_queries(gnu_corpus(N_RECORDS), N_QUERIES, QUERY_EDGES, seed=9),
        "sum",
    )


@pytest.mark.parametrize("budget_pct", BUDGET_PCTS)
def test_budget_sweep(benchmark, budget_pct):
    engine = cached_engine("GNU", N_RECORDS)
    workload = _workload()
    budget = round(budget_pct / 100 * N_QUERIES)
    engine.drop_all_views()
    if budget:
        engine.materialize_aggregate_views(workload, budget=budget)

    benchmark(lambda: [engine.aggregate(q) for q in workload])

    engine.reset_stats()
    results = [engine.aggregate(q) for q in workload]
    _results[budget_pct] = {
        "total_s": benchmark.stats.stats.mean,
        "n_matched": sum(len(r) for r in results),
        "structural_cols": engine.stats.structural_columns_fetched(),
        "measure_cols": engine.stats.measure_fetch_columns(),
        "values_fetched": engine.stats.measure_values_fetched,
        "extra_space_pct": 100
        * engine.relation.views_size_bytes()
        / engine.relation.base_size_bytes(),
    }
    engine.drop_all_views()


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(f"\n=== Figure 7: {N_QUERIES} uniform SUM aggregate queries, GNU ===")
    emit(
        f"{'budget%':>8} {'total(s)':>9} {'structcols':>11} {'measurecols':>12} "
        f"{'values':>10} {'space+%':>8}"
    )
    for pct in BUDGET_PCTS:
        r = _results.get(pct)
        if not r:
            continue
        emit(
            f"{pct:>8} {r['total_s']:9.4f} {r['structural_cols']:>11} "
            f"{r['measure_cols']:>12} {r['values_fetched']:>10} "
            f"{r['extra_space_pct']:8.2f}"
        )
    if 0 in _results and 100 in _results:
        # Aggregate views shrink BOTH the structural and the measure side.
        assert _results[100]["structural_cols"] < _results[0]["structural_cols"]
        assert _results[100]["measure_cols"] < _results[0]["measure_cols"]
        assert _results[100]["n_matched"] == _results[0]["n_matched"]

"""Figure 10: gIndex fragments vs graph views, 100 uniform graph queries.

Paper setup: 10M-record NY subset, fragments mined with gSpan on a 1%
sample, two training regimes — gIndexQ (sample drawn from query answers)
and gIndexQ+D (80% random records + 20% answers) — against the same
number of materialized graph views.  Views win; fragments still help over
no indexes beyond the edge bitmaps.

Scaled here: ``scaled(1500)`` records, 20 six-edge queries, feature counts
0/50/100% of the query count.
"""

from __future__ import annotations

import pytest

from _data import emit, cached_engine, ny_corpus, scaled
from repro.gindex import mine_frequent_fragments, select_discriminative_fragments, index_fragments
from repro.workloads import sample_path_queries

N_RECORDS = scaled(1500)
N_QUERIES = 20
QUERY_EDGES = 6
FEATURE_PCTS = [0, 50, 100]

_results: dict[tuple[str, int], float] = {}


def _queries():
    return sample_path_queries(ny_corpus(N_RECORDS), N_QUERIES, QUERY_EDGES, seed=13)


def _answer_sample(engine, queries, max_rows=400):
    rows = []
    for q in queries:
        rows.extend(engine.query(q, fetch_measures=False).rows.tolist())
    rows = list(dict.fromkeys(rows))[:max_rows]
    corpus = ny_corpus(N_RECORDS)
    return [
        frozenset(corpus.universe[i] for i in corpus.record_edges[r].tolist())
        for r in rows
    ]


def _random_sample(n, seed=0):
    corpus = ny_corpus(N_RECORDS)
    import numpy as np

    rng = np.random.default_rng(seed)
    rows = rng.choice(corpus.n_records, size=min(n, corpus.n_records), replace=False)
    return [
        frozenset(corpus.universe[i] for i in corpus.record_edges[r].tolist())
        for r in rows
    ]


def _mine(sample, max_features):
    fragments = mine_frequent_fragments(
        sample, min_support=max(2, len(sample) // 50), max_size=3,
        max_fragments=3000,
    )
    return select_discriminative_fragments(
        fragments, sample, gamma_min=1.2, max_selected=max_features
    )


def _run(engine, queries):
    return [engine.query(q, fetch_measures=False) for q in queries]


@pytest.mark.parametrize("pct", FEATURE_PCTS)
@pytest.mark.parametrize("regime", ["gIndexQ", "gIndexQ+D", "views"])
def test_feature_sweep(benchmark, regime, pct):
    engine = cached_engine("NY", N_RECORDS)
    queries = _queries()
    engine.drop_all_views()
    n_features = round(pct / 100 * N_QUERIES)
    if n_features:
        if regime == "views":
            engine.materialize_graph_views(queries, budget=n_features, method="closed")
        else:
            if regime == "gIndexQ":
                sample = _answer_sample(engine, queries)
            else:
                random_part = _random_sample(320, seed=1)
                answer_part = _answer_sample(engine, queries, max_rows=80)
                sample = random_part + answer_part
            fragments = _mine(sample, n_features)
            index_fragments(engine, fragments, prefix=f"f{pct}")
    benchmark(_run, engine, queries)
    _results[(regime, pct)] = benchmark.stats.stats.mean
    engine.drop_all_views()


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(f"\n=== Figure 10: fragments vs views, {N_QUERIES} graph queries ===")
    regimes = ["gIndexQ+D", "gIndexQ", "views"]
    emit(f"{'features%':>10} " + " ".join(f"{r:>12}" for r in regimes))
    for pct in FEATURE_PCTS:
        cells = [f"{_results.get((r, pct), float('nan')):12.4f}" for r in regimes]
        emit(f"{pct:>10} " + " ".join(cells))
    # Paper shape: at the full budget, views beat (or match) both gIndex
    # training regimes — they are workload-targeted, fragments are not.
    full = FEATURE_PCTS[-1]
    if all((r, full) in _results for r in regimes):
        assert _results[("views", full)] <= 1.25 * min(
            _results[("gIndexQ", full)], _results[("gIndexQ+D", full)]
        )

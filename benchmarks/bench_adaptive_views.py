"""Adaptive view maintenance under workload drift.

A zipf path workload whose hot set shifts mid-stream is served by two
configurations of the same engine:

* ``static`` — views selected for the *pre-drift* workload, materialized
  once, never touched again (the paper's offline §5.2 selection);
* ``adaptive`` — no views up front; a live :class:`ViewMaintainer`
  observes the query stream through the executor's workload window and
  re-runs candidate generation + greedy selection in the background,
  committing winners with the atomic epoch swap and dropping views whose
  measured hit rate decays.

Each phase is streamed twice: an adaptation pass (the maintainer reacts;
not measured) and a measured pass recording per-query latency and the
*view hit rate* — the fraction of answers whose plan used at least one
materialized view.  The acceptance bar (gated on a full-scale run):
after the drift the adaptive configuration recovers >= 80% of its
pre-drift hit rate while the static one does not, and the adaptive
post-drift p99 beats the static one.

Emits ``benchmarks/BENCH_adaptive_views.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from _data import SCALE, emit, ny_corpus, scaled
from repro import ViewMaintainer, WorkloadWindow
from repro.core import GraphAnalyticsEngine
from repro.exec import QueryExecutor
from repro.workloads import sample_path_queries

N_RECORDS = scaled(16000)
QUERY_SIZE = 4            # hops per query: long enough for views to pay
POOL_SIZE = 8             # distinct hot paths per phase
N_QUERIES = 240           # stream length per pass
ZIPF_S = 1.3
N_SHARDS = 4
VIEW_BUDGET = 8           # covers the whole hot set, either mode
SEED_PRE, SEED_POST = 11, 77

JSON_PATH = Path(__file__).parent / "BENCH_adaptive_views.json"

_results: dict[str, dict] = {}
_adaptive_stats: dict[str, int] = {}


def _phases():
    corpus = ny_corpus(N_RECORDS)
    pre = sample_path_queries(
        corpus, N_QUERIES, QUERY_SIZE, distribution="zipf",
        zipf_s=ZIPF_S, seed=SEED_PRE, pool_size=POOL_SIZE,
    )
    post = sample_path_queries(
        corpus, N_QUERIES, QUERY_SIZE, distribution="zipf",
        zipf_s=ZIPF_S, seed=SEED_POST, pool_size=POOL_SIZE,
    )
    return corpus, pre, post


def _engine(corpus) -> GraphAnalyticsEngine:
    engine = GraphAnalyticsEngine(shards=N_SHARDS)
    engine.load_records(list(corpus.to_records()))
    return engine


def _measured_pass(executor, queries) -> dict:
    """Stream the phase once; per-query wall latency and view hit rate.
    No bitmap cache is configured, so every answer pays real evaluation —
    the measured latency is exactly what materialized views buy."""
    latencies = []
    hits = 0
    for query in queries:
        t0 = time.perf_counter()
        result = executor.run_one(query, fetch_measures=False)
        latencies.append(time.perf_counter() - t0)
        if result.plan.view_names:
            hits += 1
    lat = np.asarray(latencies)
    return {
        "queries": len(queries),
        "hit_rate": hits / len(queries),
        "latency_p50_ms": float(np.percentile(lat, 50) * 1e3),
        "latency_p99_ms": float(np.percentile(lat, 99) * 1e3),
        "qps": len(queries) / float(lat.sum()),
    }


def test_static_views(benchmark):
    corpus, pre, post = _phases()
    engine = _engine(corpus)
    distinct = list(dict.fromkeys(pre))
    engine.materialize_graph_views(distinct, budget=VIEW_BUDGET)

    def run():
        with QueryExecutor(engine, jobs=4) as executor:
            for query in pre:  # warm-up pass, symmetric with adaptive
                executor.run_one(query, fetch_measures=False)
            before = _measured_pass(executor, pre)
            for query in post:
                executor.run_one(query, fetch_measures=False)
            after = _measured_pass(executor, post)
        return before, after

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    _results["static-pre-drift"] = before
    _results["static-post-drift"] = after


def test_adaptive_views(benchmark):
    corpus, pre, post = _phases()
    engine = _engine(corpus)

    def run():
        executor = QueryExecutor(engine, jobs=4)
        maintainer = ViewMaintainer(
            executor,
            window=WorkloadWindow(256),
            budget=VIEW_BUDGET,
            min_support=2,
            min_window=16,
            interval_s=0.05,
            grace_refreshes=1,
        )
        maintainer.start()  # maintenance runs concurrently with serving
        try:
            for query in pre:  # adaptation pass
                executor.run_one(query, fetch_measures=False)
            maintainer.refresh()  # pin the phase edge deterministically
            before = _measured_pass(executor, pre)
            for query in post:  # drift: maintainer re-adapts in-stream
                executor.run_one(query, fetch_measures=False)
            maintainer.refresh()
            after = _measured_pass(executor, post)
        finally:
            maintainer.stop()
            executor.close()
        assert maintainer.last_error is None
        _adaptive_stats.update(
            refreshes=maintainer.refreshes,
            views_added=maintainer.views_added,
            views_dropped=maintainer.views_dropped,
        )
        return before, after

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    _results["adaptive-pre-drift"] = before
    _results["adaptive-post-drift"] = after


def test_zz_report(benchmark):
    """Write BENCH_adaptive_views.json and assert the acceptance bar."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    expected = {
        "static-pre-drift", "static-post-drift",
        "adaptive-pre-drift", "adaptive-post-drift",
    }
    assert set(_results) == expected

    pre_hit = _results["adaptive-pre-drift"]["hit_rate"]
    post_hit = _results["adaptive-post-drift"]["hit_rate"]
    static_post_hit = _results["static-post-drift"]["hit_rate"]
    recovery = post_hit / pre_hit if pre_hit else 0.0

    payload = {
        "benchmark": "adaptive_views",
        "corpus": {"kind": "NY", "n_records": N_RECORDS, "scale": SCALE},
        "workload": {
            "queries_per_pass": N_QUERIES,
            "distinct_queries_per_phase": POOL_SIZE,
            "query_size_edges": QUERY_SIZE,
            "distribution": f"zipf(s={ZIPF_S})",
            "drift": f"hot-set reshuffle (seed {SEED_PRE} -> {SEED_POST})",
            "shards": N_SHARDS,
            "view_budget": VIEW_BUDGET,
        },
        "configs": {name: stats for name, stats in sorted(_results.items())},
        "maintainer": dict(_adaptive_stats),
        "pre_drift_hit_rate": pre_hit,
        "post_drift_hit_rate_adaptive": post_hit,
        "post_drift_hit_rate_static": static_post_hit,
        "recovery_fraction": recovery,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        f"\n=== Adaptive views under drift: {N_QUERIES} zipf queries/pass, "
        f"budget {VIEW_BUDGET} ==="
    )
    emit(f"{'config':>20} {'hit rate':>9} {'p50 ms':>9} {'p99 ms':>9} {'qps':>8}")
    for name in (
        "static-pre-drift", "static-post-drift",
        "adaptive-pre-drift", "adaptive-post-drift",
    ):
        s = _results[name]
        emit(
            f"{name:>20} {s['hit_rate']:>9.2f} {s['latency_p50_ms']:>9.3f} "
            f"{s['latency_p99_ms']:>9.3f} {s['qps']:>8.0f}"
        )
    emit(
        f"adaptive recovery: {recovery:.0%} of pre-drift hit rate "
        f"(static retains {static_post_hit:.0%}); maintainer "
        f"{_adaptive_stats.get('views_added', 0)} added / "
        f"{_adaptive_stats.get('views_dropped', 0)} dropped over "
        f"{_adaptive_stats.get('refreshes', 0)} refreshes"
    )

    # The maintainer must have actually adapted (added post-drift views
    # and decayed pre-drift ones), at any scale.
    assert _adaptive_stats["views_added"] >= 1
    assert _adaptive_stats["views_dropped"] >= 1
    if SCALE >= 1.0:
        assert recovery >= 0.8, (
            f"adaptive hit rate recovered only {recovery:.0%} after drift"
        )
        assert static_post_hit < 0.8 * pre_hit, (
            "static views kept their hit rate through the drift — the "
            "workload shift is not exercising maintenance"
        )
        p99_adaptive = _results["adaptive-post-drift"]["latency_p99_ms"]
        p99_static = _results["static-post-drift"]["latency_p99_ms"]
        assert p99_adaptive < p99_static, (
            f"post-drift p99 {p99_adaptive:.3f}ms (adaptive) should beat "
            f"{p99_static:.3f}ms (static)"
        )

"""Ablation: dense packed bitmaps vs WAH run-length compression.

The paper's bitmap columns are ~8.5% dense (a record holds ~85 of 1000
edges), the classic regime for compressed bitmap indexes (O'Neil & Quass
[4]).  This ablation loads the NY corpus bitmaps in both codecs and
compares (a) storage bytes and (b) the time to AND a query's bitmaps —
quantifying the trade the paper implicitly makes by using the column
store's plain bitmaps.
"""

from __future__ import annotations

import pytest

from _data import cached_engine, emit, ny_corpus, scaled
from repro.columnstore import Bitmap
from repro.columnstore.wah import WahBitmap
from repro.workloads import sample_path_queries

N_RECORDS = scaled(3000)
N_QUERIES = 20
QUERY_EDGES = 8

_results: dict[str, float] = {}
_sizes: dict[str, int] = {}


def _query_bitmaps(engine, queries):
    out = []
    for query in queries:
        bitmaps = []
        for element in sorted(query.elements, key=repr):
            edge_id = engine.catalog.get_id(element)
            bitmaps.append(engine.relation.column_for_persistence(edge_id).validity)
        out.append(bitmaps)
    return out


def test_dense_and(benchmark):
    engine = cached_engine("NY", N_RECORDS)
    queries = sample_path_queries(ny_corpus(N_RECORDS), N_QUERIES, QUERY_EDGES, seed=24)
    bitmap_lists = _query_bitmaps(engine, queries)
    benchmark(
        lambda: sum(Bitmap.and_all(bs).count() for bs in bitmap_lists)
    )
    _results["dense"] = benchmark.stats.stats.mean
    _sizes["dense"] = sum(
        engine.relation.column_for_persistence(i).validity.nbytes()
        for i in engine.relation.element_ids()
    )


def test_wah_and(benchmark):
    engine = cached_engine("NY", N_RECORDS)
    queries = sample_path_queries(ny_corpus(N_RECORDS), N_QUERIES, QUERY_EDGES, seed=24)
    dense_lists = _query_bitmaps(engine, queries)
    wah_lists = [
        [WahBitmap.from_dense(b) for b in bitmaps] for bitmaps in dense_lists
    ]
    benchmark(
        lambda: sum(WahBitmap.and_all(bs).count() for bs in wah_lists)
    )
    _results["wah"] = benchmark.stats.stats.mean
    _sizes["wah"] = sum(
        WahBitmap.from_dense(
            engine.relation.column_for_persistence(i).validity
        ).nbytes()
        for i in engine.relation.element_ids()
    )


def test_wah_correctness():
    """The codecs must agree on every query's answer."""
    engine = cached_engine("NY", N_RECORDS)
    queries = sample_path_queries(ny_corpus(N_RECORDS), 5, QUERY_EDGES, seed=24)
    for bitmaps in _query_bitmaps(engine, queries):
        dense = Bitmap.and_all(bitmaps)
        wah = WahBitmap.and_all([WahBitmap.from_dense(b) for b in bitmaps])
        assert wah.to_dense() == dense


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit("\n=== Ablation: bitmap codec (dense vs WAH) ===")
    for codec in ("dense", "wah"):
        if codec in _results:
            emit(
                f"  {codec:>6}: AND time {_results[codec]:.5f} s, "
                f"edge-bitmap storage {_sizes[codec] / 1e6:.2f} MB"
            )
    # The finding that VALIDATES the paper's plain-bitmap choice: at the
    # edge bitmaps' ~7% density, 63-bit all-zero groups are rare, so WAH
    # buys no space and pays a large AND penalty.
    if len(_sizes) == 2:
        assert _sizes["wah"] >= _sizes["dense"] * 0.8
        assert _results["wah"] > _results["dense"]
    # Where WAH DOES win: very sparse bitmaps, e.g. a selective graph
    # view's column (the conjunction of many edges).
    engine = cached_engine("NY", N_RECORDS)
    queries = sample_path_queries(ny_corpus(N_RECORDS), 5, QUERY_EDGES, seed=24)
    for bitmaps in _query_bitmaps(engine, queries)[:1]:
        view_bitmap = Bitmap.and_all(bitmaps)
        compressed = WahBitmap.from_dense(view_bitmap)
        emit(
            f"  sparse view bitmap ({view_bitmap.count()} of "
            f"{view_bitmap.length} set): dense {view_bitmap.nbytes()} B, "
            f"WAH {compressed.nbytes()} B"
        )
        assert compressed.nbytes() < view_bitmap.nbytes()

"""Table 2: dataset statistics, paper vs this reproduction.

Builds scaled NY and GNU corpora with the paper's generation recipe
(random walks over the base networks, 1000-edge universe, the paper's
min/max record sizes) and reports the Table 2 rows side by side with the
paper's full-scale values, plus real persisted size on disk.
"""

from __future__ import annotations

import tempfile

import pytest

from _data import emit, engine_for, gnu_corpus, ny_corpus, scaled
from repro.columnstore import relation_disk_usage, save_relation
from repro.workloads import DATASETS, corpus_statistics

PAPER = {
    "NY": {
        "n_records": 320_000_000,
        "n_measures": 27_300_000_000,
        "size_gb": 241,
        "distinct_edge_ids": 1000,
        "min_edges": 35,
        "max_edges": 100,
        "avg_edges": 85,
    },
    "GNU": {
        "n_records": 100_000_000,
        "n_measures": 7_500_000_000,
        "size_gb": 68,
        "distinct_edge_ids": 1000,
        "min_edges": 45,
        "max_edges": 100,
        "avg_edges": 75,
    },
}

SIZES = {"NY": scaled(4000), "GNU": scaled(2500)}

_stats: dict[str, dict] = {}


@pytest.mark.parametrize("kind", ["NY", "GNU"])
def test_build_and_measure(benchmark, kind):
    corpus = ny_corpus(SIZES[kind]) if kind == "NY" else gnu_corpus(SIZES[kind])

    def measure():
        stats = corpus_statistics(corpus)
        engine = engine_for(corpus)
        with tempfile.TemporaryDirectory() as tmp:
            save_relation(engine.relation, tmp)
            stats["disk_bytes"] = relation_disk_usage(tmp)
        stats["disk_bytes_model"] = engine.relation.base_size_bytes("sparse")
        _stats[kind] = stats
        return stats

    benchmark.pedantic(measure, rounds=1, iterations=1)
    assert _stats[kind]["n_records"] == SIZES[kind]


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit("\n=== Table 2: datasets (paper full scale vs this run) ===")
    for kind in ("NY", "GNU"):
        ours = _stats.get(kind)
        if not ours:
            continue
        paper = PAPER[kind]
        spec = DATASETS[kind]
        emit(f"\n{kind}:")
        emit(f"  records:        paper {paper['n_records']:>14,} | ours {ours['n_records']:>10,}")
        emit(f"  measures:       paper {paper['n_measures']:>14,} | ours {ours['n_measures']:>10,}")
        emit(f"  size on disk:   paper {paper['size_gb']:>11} GB | ours {ours['disk_bytes'] / 1e6:>8.1f} MB")
        emit(f"  edge universe:  paper {paper['distinct_edge_ids']:>14,} | ours {ours['distinct_edge_ids']:>10,}")
        emit(f"  edges/record:   paper {paper['min_edges']}-{paper['max_edges']} (avg {paper['avg_edges']})"
              f" | ours {ours['min_edges_per_record']}-{ours['max_edges_per_record']}"
              f" (avg {ours['avg_edges_per_record']})")
        # Invariants the generator must honour.
        assert ours["distinct_edge_ids"] == paper["distinct_edge_ids"]
        assert ours["max_edges_per_record"] <= spec.max_edges
        # Bytes per measure in the same order of magnitude as the paper
        # (241 GB / 27.3 G measures ≈ 9 bytes per measure).
        ours_bpm = ours["disk_bytes"] / ours["n_measures"]
        paper_bpm = paper["size_gb"] * 1e9 / paper["n_measures"]
        assert 0.2 < ours_bpm / paper_bpm < 20

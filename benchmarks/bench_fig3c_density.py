"""Figure 3(c): query time vs record density, four systems.

Paper setup: 1M NY records over a 1000-edge universe, density (edges per
record as a fraction of the universe) 10/20/50%; query graphs built with
matching density.  The column store's time is flat across density; the
others grow.

Scaled here: ``scaled(500)`` records, same densities, 10 dense queries.
"""

from __future__ import annotations

import pytest

from _data import emit, baseline_for, dense_corpus, engine_for, scaled
from repro.workloads import sample_dense_queries

N_RECORDS = scaled(500)
DENSITIES = [10, 20, 50]
N_QUERIES = 10

_results: dict[tuple[str, int], float] = {}


@pytest.mark.parametrize("density", DENSITIES)
def test_column_store(benchmark, density):
    corpus = dense_corpus(N_RECORDS, density)
    engine = engine_for(corpus)
    queries = sample_dense_queries(corpus, N_QUERIES, density / 100.0, seed=5)
    benchmark(lambda: [engine.query(q, fetch_measures=False) for q in queries])
    _results[("column-store", density)] = benchmark.stats.stats.mean


@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("system", ["row", "graph", "rdf"])
def test_baseline(benchmark, system, density):
    corpus = dense_corpus(N_RECORDS, density)
    store = baseline_for(system, corpus)
    queries = sample_dense_queries(corpus, N_QUERIES, density / 100.0, seed=5)
    benchmark(lambda: [store.query(q) for q in queries])
    _results[(store.name, density)] = benchmark.stats.stats.mean


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit(f"\n=== Figure 3(c): {N_QUERIES} density-matched queries, time (s) ===")
    systems = ["column-store", "rdf-store", "graph-db", "row-store"]
    emit(f"{'density%':>9} " + " ".join(f"{s:>14}" for s in systems))
    for d in DENSITIES:
        row = [f"{_results.get((s, d), float('nan')):14.4f}" for s in systems]
        emit(f"{d:>9} " + " ".join(row))
    lo, hi = DENSITIES[0], DENSITIES[-1]
    if ("column-store", lo) in _results and ("row-store", lo) in _results:
        column_growth = _results[("column-store", hi)] / _results[("column-store", lo)]
        row_growth = _results[("row-store", hi)] / _results[("row-store", lo)]
        assert column_growth <= row_growth, (
            "paper shape: density hurts the row store more than the column store"
        )

"""Ablation: bitmap AND evaluation order.

The engine ANDs bitmaps in plan order.  This ablation compares three
orders for multi-edge queries — schema order, most-selective-first, and
least-selective-first — to quantify how much ordering matters for the
word-parallel AND (spoiler: little, since every AND touches all words;
this validates the paper's cost model that charges per bitmap *fetched*,
not per intersection strategy).
"""

from __future__ import annotations

import pytest

from _data import emit, cached_engine, ny_corpus, scaled
from repro.columnstore import Bitmap
from repro.workloads import sample_path_queries

N_RECORDS = scaled(3000)
N_QUERIES = 25
QUERY_EDGES = 10

_results: dict[str, float] = {}


def _bitmaps(engine, query):
    out = []
    for element in sorted(query.elements, key=repr):
        edge_id = engine.catalog.get_id(element)
        out.append(engine.relation.column_for_persistence(edge_id).validity)
    return out


def _run(bitmap_lists):
    total = 0
    for bitmaps in bitmap_lists:
        total += Bitmap.and_all(bitmaps).count()
    return total


@pytest.mark.parametrize("order", ["schema", "selective-first", "selective-last"])
def test_and_order(benchmark, order):
    engine = cached_engine("NY", N_RECORDS)
    queries = sample_path_queries(ny_corpus(N_RECORDS), N_QUERIES, QUERY_EDGES, seed=21)
    bitmap_lists = [_bitmaps(engine, q) for q in queries]
    # Ordering happens at plan time (selectivities come from catalog
    # statistics in a real system), so it is setup, not measured work.
    if order == "selective-first":
        bitmap_lists = [sorted(bs, key=lambda b: b.count()) for bs in bitmap_lists]
    elif order == "selective-last":
        bitmap_lists = [sorted(bs, key=lambda b: -b.count()) for bs in bitmap_lists]
    totals = benchmark(_run, bitmap_lists)
    _results[order] = benchmark.stats.stats.mean
    assert totals >= 0


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit("\n=== Ablation: AND order ===")
    for order, mean in sorted(_results.items()):
        emit(f"  {order:>16}: {mean:.5f} s")
    if len(_results) == 3:
        fastest, slowest = min(_results.values()), max(_results.values())
        # Word-parallel ANDs are order-insensitive to first order: within 3x.
        assert slowest < fastest * 3
